#include "graph/wal/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/metrics.h"
#include "common/timer.h"
#include "graph/wal/crc32.h"
#include "graph/wal/record.h"

namespace gs::wal {

namespace {

constexpr size_t kHeaderSize = sizeof(kWalMagic);
constexpr size_t kFrameSize = 8;  // u32 payload_len + u32 crc

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IoError(what + " '" + path + "': " + std::strerror(errno));
}

Status WriteAll(int fd, const uint8_t* data, size_t len,
                const std::string& path) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("wal write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

uint32_t ReadU32Le(const uint8_t* p) {
  return uint32_t{p[0]} | uint32_t{p[1]} << 8 | uint32_t{p[2]} << 16 |
         uint32_t{p[3]} << 24;
}

}  // namespace

WalWriter::~WalWriter() {
  Status s = Close();
  (void)s;
}

Status WalWriter::Open(const std::string& path, WalWriterOptions options) {
  if (is_open()) return Status::FailedPrecondition("wal already open");
  if (options.sync_every_n_appends == 0) {
    return Status::InvalidArgument("sync_every_n_appends must be >= 1");
  }
  // Replay (which validates and measures the good prefix) runs before Open
  // on recovery; here we re-check just the header and truncate any torn
  // tail so the next record lands on a boundary.
  GS_ASSIGN_OR_RETURN(WalReplayResult replay, ReplayWal(path));
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return ErrnoStatus("wal open", path);
  if (replay.valid_bytes == 0) {
    // Fresh file: write the header.
    Status s = WriteAll(fd, reinterpret_cast<const uint8_t*>(kWalMagic),
                        kHeaderSize, path);
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
    replay.valid_bytes = kHeaderSize;
  } else if (::ftruncate(fd, static_cast<off_t>(replay.valid_bytes)) != 0) {
    Status s = ErrnoStatus("wal truncate", path);
    ::close(fd);
    return s;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    Status s = ErrnoStatus("wal seek", path);
    ::close(fd);
    return s;
  }
  fd_ = fd;
  path_ = path;
  options_ = options;
  appends_since_sync_ = 0;
  bytes_written_ = replay.valid_bytes;
  return Status::Ok();
}

Status WalWriter::Append(const MutationBatch& batch) {
  if (!is_open()) return Status::FailedPrecondition("wal not open");
  Timer append_timer;
  std::vector<uint8_t> payload = EncodeMutationBatch(batch);
  uint32_t crc = Crc32(payload.data(), payload.size());
  // Frame + payload in one buffer → one write(2), so a crash can only tear
  // the record at arbitrary byte offsets (handled by replay), never
  // interleave with another record.
  std::vector<uint8_t> framed;
  framed.reserve(kFrameSize + payload.size());
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) framed.push_back((len >> (8 * i)) & 0xFF);
  for (int i = 0; i < 4; ++i) framed.push_back((crc >> (8 * i)) & 0xFF);
  framed.insert(framed.end(), payload.begin(), payload.end());
  GS_RETURN_IF_ERROR(WriteAll(fd_, framed.data(), framed.size(), path_));
  bytes_written_ += framed.size();

  static auto* wal_bytes =
      metrics::Registry::Global().GetCounter("gs_wal_bytes");
  static auto* wal_records =
      metrics::Registry::Global().GetCounter("gs_wal_records");
  wal_bytes->Increment(framed.size());
  wal_records->Increment();

  Status result = Status::Ok();
  if (++appends_since_sync_ >= options_.sync_every_n_appends) {
    result = Sync();
  }
  // SLO: end-to-end append latency, including the fsync when this append
  // hits the sync cadence — the number an ingest caller actually waits on.
  static auto* append_nanos =
      metrics::Registry::Global().GetHistogram("gs_wal_append_nanos");
  append_nanos->Observe(static_cast<uint64_t>(append_timer.Nanos()));
  return result;
}

Status WalWriter::Sync() {
  if (!is_open()) return Status::FailedPrecondition("wal not open");
  appends_since_sync_ = 0;
  Timer fsync_timer;
  int rc = ::fsync(fd_);
  // SLO: observed on failure too — a hung-then-failed fsync is exactly the
  // latency spike the watchdog's wal_fsync_latency rule watches for.
  static auto* fsync_nanos =
      metrics::Registry::Global().GetHistogram("gs_wal_fsync_nanos");
  fsync_nanos->Observe(static_cast<uint64_t>(fsync_timer.Nanos()));
  if (rc != 0) return ErrnoStatus("wal fsync", path_);
  return Status::Ok();
}

Status WalWriter::Close() {
  if (!is_open()) return Status::Ok();
  Status s = Sync();
  ::close(fd_);
  fd_ = -1;
  return s;
}

StatusOr<WalReplayResult> ReplayWal(const std::string& path) {
  WalReplayResult result;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return result;  // Fresh log: nothing to replay.
    return ErrnoStatus("wal open", path);
  }

  std::vector<uint8_t> data;
  {
    uint8_t buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        Status s = ErrnoStatus("wal read", path);
        ::close(fd);
        return s;
      }
      if (n == 0) break;
      data.insert(data.end(), buf, buf + n);
    }
  }
  ::close(fd);

  if (data.empty()) return result;  // Created but never written: fresh.
  if (data.size() < kHeaderSize ||
      std::memcmp(data.data(), kWalMagic, kHeaderSize) != 0) {
    return Status::IoError("wal '" + path + "': bad magic (not a WAL file?)");
  }

  size_t pos = kHeaderSize;
  result.valid_bytes = kHeaderSize;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameSize) {
      result.recovered_torn_tail = true;  // Frame itself is torn.
      break;
    }
    uint32_t len = ReadU32Le(data.data() + pos);
    uint32_t crc = ReadU32Le(data.data() + pos + 4);
    if (data.size() - pos - kFrameSize < len) {
      result.recovered_torn_tail = true;  // Payload is torn.
      break;
    }
    const uint8_t* payload = data.data() + pos + kFrameSize;
    if (Crc32(payload, len) != crc) {
      // A complete record with a bad checksum is corruption, not a torn
      // tail — refuse to silently drop committed data.
      return Status::IoError("wal '" + path + "': checksum mismatch in record " +
                             std::to_string(result.batches.size()));
    }
    GS_ASSIGN_OR_RETURN(MutationBatch batch, DecodeMutationBatch(payload, len));
    result.batches.push_back(std::move(batch));
    pos += kFrameSize + len;
    result.valid_bytes = pos;
  }
  return result;
}

}  // namespace gs::wal
