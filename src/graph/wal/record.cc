#include "graph/wal/record.h"

#include <cstring>

namespace gs::wal {

namespace {

// PropertyValue wire tags. Deliberately decoupled from PropertyType's
// numeric values so the enum can evolve without breaking old logs.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagBool = 1;
constexpr uint8_t kTagInt = 2;
constexpr uint8_t kTagDouble = 3;
constexpr uint8_t kTagString = 4;

constexpr uint8_t kMaxMutationKind =
    static_cast<uint8_t>(MutationKind::kSetEdgeProperty);

}  // namespace

void RecordWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xFF);
}

void RecordWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xFF);
}

void RecordWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void RecordWriter::PutValue(const PropertyValue& v) {
  switch (v.type()) {
    case PropertyType::kNull:
      PutU8(kTagNull);
      break;
    case PropertyType::kBool:
      PutU8(kTagBool);
      PutU8(v.AsBool() ? 1 : 0);
      break;
    case PropertyType::kInt:
      PutU8(kTagInt);
      PutU64(static_cast<uint64_t>(v.AsInt()));
      break;
    case PropertyType::kDouble: {
      PutU8(kTagDouble);
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(bits);
      break;
    }
    case PropertyType::kString:
      PutU8(kTagString);
      PutString(v.AsString());
      break;
  }
}

void RecordWriter::PutMutation(const Mutation& m) {
  PutU8(static_cast<uint8_t>(m.kind));
  switch (m.kind) {
    case MutationKind::kAddNode:
      PutU32(static_cast<uint32_t>(m.row.size()));
      for (const PropertyValue& v : m.row) PutValue(v);
      break;
    case MutationKind::kRemoveNode:
      PutU64(m.node);
      break;
    case MutationKind::kAddEdge:
      PutU64(m.src);
      PutU64(m.dst);
      PutU32(static_cast<uint32_t>(m.row.size()));
      for (const PropertyValue& v : m.row) PutValue(v);
      break;
    case MutationKind::kRemoveEdge:
      PutU64(m.edge);
      break;
    case MutationKind::kSetNodeProperty:
      PutU64(m.node);
      PutString(m.column);
      PutValue(m.value);
      break;
    case MutationKind::kSetEdgeProperty:
      PutU64(m.edge);
      PutString(m.column);
      PutValue(m.value);
      break;
  }
}

StatusOr<uint8_t> RecordReader::GetU8() {
  if (remaining() < 1) return Status::ParseError("wal record truncated (u8)");
  return data_[pos_++];
}

StatusOr<uint32_t> RecordReader::GetU32() {
  if (remaining() < 4) return Status::ParseError("wal record truncated (u32)");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t{data_[pos_ + i]} << (8 * i);
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> RecordReader::GetU64() {
  if (remaining() < 8) return Status::ParseError("wal record truncated (u64)");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t{data_[pos_ + i]} << (8 * i);
  pos_ += 8;
  return v;
}

StatusOr<std::string> RecordReader::GetString() {
  GS_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (remaining() < len) {
    return Status::ParseError("wal record truncated (string)");
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

StatusOr<PropertyValue> RecordReader::GetValue() {
  GS_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  switch (tag) {
    case kTagNull:
      return PropertyValue::Null();
    case kTagBool: {
      GS_ASSIGN_OR_RETURN(uint8_t b, GetU8());
      return PropertyValue(b != 0);
    }
    case kTagInt: {
      GS_ASSIGN_OR_RETURN(uint64_t v, GetU64());
      return PropertyValue(static_cast<int64_t>(v));
    }
    case kTagDouble: {
      GS_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return PropertyValue(d);
    }
    case kTagString: {
      GS_ASSIGN_OR_RETURN(std::string s, GetString());
      return PropertyValue(std::move(s));
    }
    default:
      return Status::ParseError("wal record: unknown value tag " +
                                std::to_string(tag));
  }
}

StatusOr<Mutation> RecordReader::GetMutation() {
  GS_ASSIGN_OR_RETURN(uint8_t kind_byte, GetU8());
  if (kind_byte > kMaxMutationKind) {
    return Status::ParseError("wal record: unknown mutation kind " +
                              std::to_string(kind_byte));
  }
  Mutation m;
  m.kind = static_cast<MutationKind>(kind_byte);
  switch (m.kind) {
    case MutationKind::kAddNode: {
      GS_ASSIGN_OR_RETURN(uint32_t n, GetU32());
      m.row.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        GS_ASSIGN_OR_RETURN(PropertyValue v, GetValue());
        m.row.push_back(std::move(v));
      }
      break;
    }
    case MutationKind::kRemoveNode: {
      GS_ASSIGN_OR_RETURN(m.node, GetU64());
      break;
    }
    case MutationKind::kAddEdge: {
      GS_ASSIGN_OR_RETURN(m.src, GetU64());
      GS_ASSIGN_OR_RETURN(m.dst, GetU64());
      GS_ASSIGN_OR_RETURN(uint32_t n, GetU32());
      m.row.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        GS_ASSIGN_OR_RETURN(PropertyValue v, GetValue());
        m.row.push_back(std::move(v));
      }
      break;
    }
    case MutationKind::kRemoveEdge: {
      GS_ASSIGN_OR_RETURN(m.edge, GetU64());
      break;
    }
    case MutationKind::kSetNodeProperty: {
      GS_ASSIGN_OR_RETURN(m.node, GetU64());
      GS_ASSIGN_OR_RETURN(m.column, GetString());
      GS_ASSIGN_OR_RETURN(m.value, GetValue());
      break;
    }
    case MutationKind::kSetEdgeProperty: {
      GS_ASSIGN_OR_RETURN(m.edge, GetU64());
      GS_ASSIGN_OR_RETURN(m.column, GetString());
      GS_ASSIGN_OR_RETURN(m.value, GetValue());
      break;
    }
  }
  return m;
}

std::vector<uint8_t> EncodeMutationBatch(const MutationBatch& batch) {
  RecordWriter w;
  w.PutU32(static_cast<uint32_t>(batch.size()));
  for (const Mutation& m : batch) w.PutMutation(m);
  return w.Take();
}

StatusOr<MutationBatch> DecodeMutationBatch(const uint8_t* data, size_t len) {
  RecordReader r(data, len);
  GS_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  MutationBatch batch;
  batch.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    GS_ASSIGN_OR_RETURN(Mutation m, r.GetMutation());
    batch.push_back(std::move(m));
  }
  if (r.remaining() != 0) {
    return Status::ParseError("wal record: trailing bytes after batch");
  }
  return batch;
}

}  // namespace gs::wal
