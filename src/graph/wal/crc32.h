// CRC-32 (IEEE 802.3 polynomial, reflected) for WAL record checksums.
#ifndef GRAPHSURGE_GRAPH_WAL_CRC32_H_
#define GRAPHSURGE_GRAPH_WAL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace gs::wal {

/// CRC-32 of `data[0, len)`. `seed` chains partial computations:
/// Crc32(b, n) == Crc32(b + k, n - k, Crc32(b, k)).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace gs::wal

#endif  // GRAPHSURGE_GRAPH_WAL_CRC32_H_
