#include "algorithms/algorithms.h"

#include <tuple>

#include "common/logging.h"

namespace gs::analytics {

namespace dd = ::gs::differential;

using KeyedU64 = std::pair<uint64_t, uint64_t>;

namespace {

/// All distinct vertices incident to any edge.
dd::Stream<uint64_t> VerticesOf(EdgeStream edges) {
  auto endpoints =
      edges.FlatMap([](const WeightedEdge& e, std::vector<uint64_t>* out) {
        out->push_back(e.src);
        out->push_back(e.dst);
      });
  return dd::Distinct(endpoints);
}

/// Antijoin: records of `in` whose key appears in `present` are removed.
/// Implemented as in - semijoin(in, present); `present` must hold each key
/// with multiplicity exactly one (e.g. a Distinct output).
template <typename K, typename V>
dd::Stream<std::pair<K, V>> Antijoin(dd::Stream<std::pair<K, V>> in,
                                     dd::Stream<std::pair<K, bool>> present) {
  auto matched = dd::Join(
      in, present,
      [](const K& k, const V& v, const bool&) { return std::make_pair(k, v); });
  return in.Concat(matched.Negate());
}

}  // namespace

ResultStream Wcc::GraphAnalytics(dd::Dataflow* dataflow,
                                 EdgeStream edges) const {
  // Undirected, deduplicated adjacency (parallel edges would multiply join
  // outputs without changing the result).
  auto sym = edges.FlatMap([](const WeightedEdge& e,
                              std::vector<KeyedU64>* out) {
    out->push_back({e.src, e.dst});
    out->push_back({e.dst, e.src});
  });
  auto labels0 = VerticesOf(edges).Map(
      [](const uint64_t& v) { return std::make_pair(v, static_cast<int64_t>(v)); });
  auto propagate = [](const uint64_t&, const int64_t& label,
                      const uint64_t& dst) {
    return std::make_pair(dst, label);
  };

  if (dataflow->options().use_arrangements) {
    // The deduplicated adjacency lives in the distinct-reduce's output
    // trace; the loop probes it by reference instead of re-indexing it.
    auto adjacency = dd::DistinctArranged(sym);
    return dd::Iterate<VertexValue>(
        labels0, [&](dd::LoopScope& scope, dd::Stream<VertexValue> inner) {
          auto adj_in = adjacency.Enter(scope);
          auto labels0_in = scope.Enter(labels0);
          auto messages = dd::JoinArranged(inner, adj_in, propagate);
          return dd::ReduceMin(messages.Concat(labels0_in));
        });
  }
  auto adjacency = dd::Distinct(sym);
  return dd::Iterate<VertexValue>(
      labels0, [&](dd::LoopScope& scope, dd::Stream<VertexValue> inner) {
        auto adj_in = scope.Enter(adjacency);
        auto labels0_in = scope.Enter(labels0);
        auto messages = dd::Join(inner, adj_in, propagate);
        return dd::ReduceMin(messages.Concat(labels0_in));
      });
}

ResultStream Bfs::GraphAnalytics(dd::Dataflow* dataflow,
                                 EdgeStream edges) const {
  auto hops = edges.Map(
      [](const WeightedEdge& e) { return KeyedU64{e.src, e.dst}; });
  // The root exists only if the source has an outgoing edge in this view —
  // the paper picks the first vertex with an outgoing edge.
  VertexId source = source_;
  auto roots = dd::Distinct(
      edges.Filter([source](const WeightedEdge& e) { return e.src == source; })
          .Map([source](const WeightedEdge&) {
            return std::make_pair(source, int64_t{0});
          }));
  auto step = [](const uint64_t&, const int64_t& dist, const uint64_t& dst) {
    return std::make_pair(dst, dist + 1);
  };

  if (dataflow->options().use_arrangements) {
    auto adjacency = dd::DistinctArranged(hops);
    return dd::Iterate<VertexValue>(
        roots, [&](dd::LoopScope& scope, dd::Stream<VertexValue> inner) {
          auto adj_in = adjacency.Enter(scope);
          auto roots_in = scope.Enter(roots);
          auto messages = dd::JoinArranged(inner, adj_in, step);
          return dd::ReduceMin(messages.Concat(roots_in));
        });
  }
  auto adjacency = dd::Distinct(hops);
  return dd::Iterate<VertexValue>(
      roots, [&](dd::LoopScope& scope, dd::Stream<VertexValue> inner) {
        auto adj_in = scope.Enter(adjacency);
        auto roots_in = scope.Enter(roots);
        auto messages = dd::Join(inner, adj_in, step);
        return dd::ReduceMin(messages.Concat(roots_in));
      });
}

ResultStream BellmanFord::GraphAnalytics(dd::Dataflow* dataflow,
                                         EdgeStream edges) const {
  // Keep (dst, weight) pairs distinct — parallel equal-weight edges dedupe,
  // different weights both participate and ReduceMin picks the best.
  auto weighted = edges.Map([](const WeightedEdge& e) {
    return std::make_pair(e.src, std::make_pair(e.dst, e.weight));
  });
  VertexId source = source_;
  auto roots = dd::Distinct(
      edges.Filter([source](const WeightedEdge& e) { return e.src == source; })
          .Map([source](const WeightedEdge&) {
            return std::make_pair(source, int64_t{0});
          }));
  auto relax = [](const uint64_t&, const int64_t& dist,
                  const std::pair<uint64_t, int64_t>& edge) {
    return std::make_pair(edge.first, dist + edge.second);
  };

  if (dataflow->options().use_arrangements) {
    auto adjacency = dd::DistinctArranged(weighted);
    return dd::Iterate<VertexValue>(
        roots, [&](dd::LoopScope& scope, dd::Stream<VertexValue> inner) {
          auto adj_in = adjacency.Enter(scope);
          auto roots_in = scope.Enter(roots);
          auto messages = dd::JoinArranged(inner, adj_in, relax);
          return dd::ReduceMin(messages.Concat(roots_in));
        });
  }
  auto adjacency = dd::Distinct(weighted);
  return dd::Iterate<VertexValue>(
      roots, [&](dd::LoopScope& scope, dd::Stream<VertexValue> inner) {
        auto adj_in = scope.Enter(adjacency);
        auto roots_in = scope.Enter(roots);
        auto messages = dd::Join(inner, adj_in, relax);
        return dd::ReduceMin(messages.Concat(roots_in));
      });
}

ResultStream PageRank::GraphAnalytics(dd::Dataflow* dataflow,
                                      EdgeStream edges) const {
  GS_CHECK(iterations_ >= 1);
  // Out-edges keep multiplicity: each parallel edge carries its own share.
  auto out_edges = edges.Map(
      [](const WeightedEdge& e) { return KeyedU64{e.src, e.dst}; });
  auto base_ranks = VerticesOf(edges).Map([](const uint64_t& v) {
    return std::make_pair(v, Base());
  });
  auto to_share = [](const uint64_t& v, const int64_t& rank,
                     const int64_t& deg) {
    return std::make_pair(v, Damp(rank) / deg);
  };
  auto to_contribution = [](const uint64_t&, const int64_t& share,
                            const uint64_t& dst) {
    return std::make_pair(dst, share);
  };
  // rank = base + Σ contributions; summing the concat of the base
  // collection and the contributions computes exactly that.
  auto sum_ranks = [](const uint64_t&, const dd::Batch<int64_t>& in,
                      dd::Batch<int64_t>* out) {
    int64_t total = 0;
    for (const auto& u : in) total += u.data * u.diff;
    out->push_back(dd::Update<int64_t>{total, 1});
  };

  dd::IterateOptions options;
  options.max_iterations = iterations_ - 1;

  if (dataflow->options().use_arrangements) {
    // The edge set is arranged once; the same trace backs the degree count
    // and the contribution join, and the degree count's output trace backs
    // the share join — no operator-private edge or degree index remains.
    auto edges_arr = dd::Arrange(out_edges);
    auto degrees_arr = dd::CountArranged(edges_arr);  // (v, outdeg)
    return dd::Iterate<VertexValue>(
        base_ranks,
        [&](dd::LoopScope& scope, dd::Stream<VertexValue> ranks) {
          auto degrees_in = degrees_arr.Enter(scope);
          auto edges_in = edges_arr.Enter(scope);
          auto base_in = scope.Enter(base_ranks);
          auto shares = dd::JoinArranged(ranks, degrees_in, to_share);
          auto contributions =
              dd::JoinArranged(shares, edges_in, to_contribution);
          return dd::Reduce<int64_t>(contributions.Concat(base_in),
                                     sum_ranks);
        },
        options);
  }
  auto degrees = dd::Count(out_edges);  // (v, outdeg)
  return dd::Iterate<VertexValue>(
      base_ranks,
      [&](dd::LoopScope& scope, dd::Stream<VertexValue> ranks) {
        auto degrees_in = scope.Enter(degrees);
        auto edges_in = scope.Enter(out_edges);
        auto base_in = scope.Enter(base_ranks);
        // Per-vertex share of its rank along each out-edge.
        auto shares = dd::Join(ranks, degrees_in, to_share);
        auto contributions = dd::Join(shares, edges_in, to_contribution);
        auto next =
            dd::Reduce<int64_t>(contributions.Concat(base_in), sum_ranks);
        return next;
      },
      options);
}

ResultStream Mpsp::GraphAnalytics(dd::Dataflow* dataflow,
                                  EdgeStream edges) const {
  GS_CHECK(pairs_.size() <= 256) << "MPSP supports at most 256 pairs";
  using Tagged = std::pair<uint64_t, std::pair<int64_t, int64_t>>;

  auto weighted = edges.Map([](const WeightedEdge& e) {
    return std::make_pair(e.src, std::make_pair(e.dst, e.weight));
  });

  // One root per pair whose source has an outgoing edge, tagged with the
  // pair index so propagations stay independent.
  dd::Stream<Tagged> roots;
  for (size_t i = 0; i < pairs_.size(); ++i) {
    VertexId source = pairs_[i].first;
    auto root_i = dd::Distinct(
        edges
            .Filter(
                [source](const WeightedEdge& e) { return e.src == source; })
            .Map([source, i](const WeightedEdge&) {
              return Tagged{source, {static_cast<int64_t>(i), 0}};
            }));
    roots = roots.valid() ? roots.Concat(root_i) : root_i;
  }
  if (!roots.valid()) {
    // No pairs: an empty result stream derived from the edges.
    return edges.Filter([](const WeightedEdge&) { return false; })
        .Map([](const WeightedEdge& e) {
          return std::make_pair(e.src, int64_t{0});
        });
  }

  auto relax = [](const uint64_t&, const std::pair<int64_t, int64_t>& tag_dist,
                  const std::pair<uint64_t, int64_t>& edge) {
    return Tagged{edge.first, {tag_dist.first, tag_dist.second + edge.second}};
  };
  auto body = [&](dd::LoopScope& scope, dd::Stream<Tagged> inner,
                  dd::Stream<Tagged> messages) {
    auto roots_in = scope.Enter(roots);
    // Min distance per (vertex, pair-index).
    auto keyed = messages.Concat(roots_in).Map([](const Tagged& t) {
      return std::make_pair(PackKey(t.first, t.second.first),
                            t.second.second);
    });
    auto best = dd::ReduceMin(keyed);
    return best.Map([](const VertexValue& kv) {
      return Tagged{UnpackVertex(kv.first),
                    {static_cast<int64_t>(UnpackPair(kv.first)), kv.second}};
    });
  };

  dd::Stream<Tagged> dists;
  if (dataflow->options().use_arrangements) {
    auto adjacency = dd::DistinctArranged(weighted);
    dists = dd::Iterate<Tagged>(
        roots, [&](dd::LoopScope& scope, dd::Stream<Tagged> inner) {
          auto adj_in = adjacency.Enter(scope);
          auto messages = dd::JoinArranged(inner, adj_in, relax);
          return body(scope, inner, messages);
        });
  } else {
    auto adjacency = dd::Distinct(weighted);
    dists = dd::Iterate<Tagged>(
        roots, [&](dd::LoopScope& scope, dd::Stream<Tagged> inner) {
          auto adj_in = scope.Enter(adjacency);
          auto messages = dd::Join(inner, adj_in, relax);
          return body(scope, inner, messages);
        });
  }
  return dists.Map([](const Tagged& t) {
    return std::make_pair(PackKey(t.first, t.second.first), t.second.second);
  });
}

ResultStream Scc::GraphAnalytics(dd::Dataflow* dataflow,
                                 EdgeStream edges) const {
  // The outer loop variable carries tagged records: kind 0 = an active edge
  // (src, dst) of the not-yet-settled subgraph, kind 1 = a final assignment
  // (vertex, scc-id). Assignments ride along unchanged once produced, so
  // the loop's final value contains the union over all peeling rounds —
  // an egress of the per-round members alone would be retracted when the
  // next round's shrunken active set recomputes them.
  using SccRec = std::tuple<int64_t, uint64_t, int64_t>;
  static constexpr int64_t kEdge = 0;
  static constexpr int64_t kAssign = 1;

  // Active subgraph representation: real edges plus a self-loop marker per
  // active vertex (markers keep vertices alive after their edges settle).
  auto base_edges = edges.Map(
      [](const WeightedEdge& e) { return KeyedU64{e.src, e.dst}; });
  auto markers = VerticesOf(edges).Map(
      [](const uint64_t& v) { return KeyedU64{v, v}; });
  auto active0 = dd::Distinct(base_edges.Concat(markers));
  auto state0 = active0.Map([](const KeyedU64& e) {
    return SccRec{kEdge, e.first, static_cast<int64_t>(e.second)};
  });

  const bool use_arrangements = dataflow->options().use_arrangements;
  auto final_state = dd::Iterate<SccRec>(
      state0, [&](dd::LoopScope& outer, dd::Stream<SccRec> state) {
        auto active = state
                          .Filter([](const SccRec& r) {
                            return std::get<0>(r) == kEdge;
                          })
                          .Map([](const SccRec& r) {
                            return KeyedU64{
                                std::get<1>(r),
                                static_cast<uint64_t>(std::get<2>(r))};
                          });
        auto carried_assignments = state.Filter(
            [](const SccRec& r) { return std::get<0>(r) == kAssign; });
        auto vertices = dd::Distinct(
            active.FlatMap([](const KeyedU64& e, std::vector<uint64_t>* out) {
              out->push_back(e.first);
              out->push_back(e.second);
            }));
        auto init_colors = vertices.Map([](const uint64_t& v) {
          return std::make_pair(v, static_cast<int64_t>(v));
        });

        auto move_color = [](const uint64_t&, const int64_t& color,
                             const uint64_t& dst) {
          return std::make_pair(dst, color);
        };
        auto attach_src_color = [](const uint64_t& src, const uint64_t& dst,
                                   const int64_t& color) {
          return std::make_pair(dst, std::make_pair(src, color));
        };
        auto compare_colors = [](const uint64_t& dst,
                                 const std::pair<uint64_t, int64_t>& src_col,
                                 const int64_t& dst_color) {
          return std::make_tuple(dst, src_col.first,
                                 src_col.second == dst_color);
        };
        auto keep_same_color =
            [](const std::tuple<uint64_t, uint64_t, bool>& t) {
              return std::get<2>(t);
            };
        auto reverse_edge = [](const std::tuple<uint64_t, uint64_t, bool>& t) {
          return KeyedU64{std::get<0>(t), std::get<1>(t)};
        };
        auto move_member = [](const uint64_t&, const int64_t& color,
                              const uint64_t& upstream) {
          return std::make_pair(upstream, color);
        };

        // Inner loop 1: forward color propagation — col(v) = max id with a
        // path to v in the active subgraph. Then edges whose endpoints share
        // a color (membership may only flow through them), reversed for
        // backward propagation: (dst, src). With arrangements, the active
        // edge set is indexed once per peeling round and shared between the
        // color loop and the src-color join, and the color collection is
        // arranged once for both sides of the same-color test.
        dd::Stream<VertexValue> colors;
        dd::Stream<KeyedU64> same_color_rev;
        if (use_arrangements) {
          auto active_arr = dd::Arrange(active);
          colors = dd::Iterate<VertexValue>(
              init_colors,
              [&](dd::LoopScope& inner, dd::Stream<VertexValue> c) {
                auto edges_in = active_arr.Enter(inner);
                auto init_in = inner.Enter(init_colors);
                auto moved = dd::JoinArranged(c, edges_in, move_color);
                return dd::ReduceMax(moved.Concat(init_in));
              });
          auto colors_arr = dd::Arrange(colors);
          auto with_src_color =
              dd::JoinArranged(active_arr, colors_arr, attach_src_color);
          same_color_rev =
              dd::JoinArranged(with_src_color, colors_arr, compare_colors)
                  .Filter(keep_same_color)
                  .Map(reverse_edge);
        } else {
          colors = dd::Iterate<VertexValue>(
              init_colors,
              [&](dd::LoopScope& inner, dd::Stream<VertexValue> c) {
                auto edges_in = inner.Enter(active);
                auto init_in = inner.Enter(init_colors);
                auto moved = dd::Join(c, edges_in, move_color);
                return dd::ReduceMax(moved.Concat(init_in));
              });
          auto with_src_color = dd::Join(active, colors, attach_src_color);
          same_color_rev = dd::Join(with_src_color, colors, compare_colors)
                               .Filter(keep_same_color)
                               .Map(reverse_edge);
        }

        // Roots: vertices that are their own color.
        auto roots = colors.Filter([](const VertexValue& vc) {
          return vc.first == static_cast<uint64_t>(vc.second);
        });

        // Inner loop 2: backward membership — v joins the SCC of color c if
        // some same-color edge (v, w) has member w.
        dd::Stream<VertexValue> members;
        if (use_arrangements) {
          auto rev_arr = dd::Arrange(same_color_rev);
          members = dd::Iterate<VertexValue>(
              roots, [&](dd::LoopScope& inner, dd::Stream<VertexValue> m) {
                auto rev_in = rev_arr.Enter(inner);
                auto roots_in = inner.Enter(roots);
                auto moved = dd::JoinArranged(m, rev_in, move_member);
                return dd::ReduceMin(moved.Concat(roots_in));
              });
        } else {
          members = dd::Iterate<VertexValue>(
              roots, [&](dd::LoopScope& inner, dd::Stream<VertexValue> m) {
                auto rev_in = inner.Enter(same_color_rev);
                auto roots_in = inner.Enter(roots);
                auto moved = dd::Join(m, rev_in, move_member);
                return dd::ReduceMin(moved.Concat(roots_in));
              });
        }

        // Remove settled vertices: antijoin on src, then on dst.
        auto settled = members.Map([](const VertexValue& vc) {
          return std::make_pair(vc.first, true);
        });
        auto pruned_src = Antijoin(active, settled);
        auto by_dst = pruned_src.Map(
            [](const KeyedU64& e) { return KeyedU64{e.second, e.first}; });
        auto pruned = Antijoin(by_dst, settled).Map([](const KeyedU64& e) {
          return KeyedU64{e.second, e.first};
        });

        // Next state: remaining edges + carried and newly settled vertices.
        auto pruned_tagged = pruned.Map([](const KeyedU64& e) {
          return SccRec{kEdge, e.first, static_cast<int64_t>(e.second)};
        });
        auto new_assignments = members.Map([](const VertexValue& vc) {
          return SccRec{kAssign, vc.first, vc.second};
        });
        return pruned_tagged.Concat(carried_assignments)
            .Concat(new_assignments);
      });

  return final_state
      .Filter([](const SccRec& r) { return std::get<0>(r) == kAssign; })
      .Map([](const SccRec& r) {
        return std::make_pair(std::get<1>(r), std::get<2>(r));
      });
}

}  // namespace gs::analytics
