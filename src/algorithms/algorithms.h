// The five analytics computations evaluated in the paper (§7.1): weakly
// connected components, strongly connected components (doubly-iterative
// coloring), breadth-first search, PageRank, and multiple-pair shortest
// paths — plus single-source Bellman-Ford used by the paper's running
// example and Table 2. All are built on the differential API, so running
// them over a view collection shares computation across views.
#ifndef GRAPHSURGE_ALGORITHMS_ALGORITHMS_H_
#define GRAPHSURGE_ALGORITHMS_ALGORITHMS_H_

#include <memory>
#include <vector>

#include "algorithms/computation.h"

namespace gs::analytics {

/// Weakly connected components: every vertex is labeled with the minimum
/// vertex id in its (undirected) component.
class Wcc : public Computation {
 public:
  std::string name() const override { return "wcc"; }
  ResultStream GraphAnalytics(differential::Dataflow* dataflow,
                              EdgeStream edges) const override;
};

/// Breadth-first search: hop distance from `source` (unweighted).
/// Unreachable vertices produce no output.
class Bfs : public Computation {
 public:
  explicit Bfs(VertexId source) : source_(source) {}
  std::string name() const override { return "bfs"; }
  ResultStream GraphAnalytics(differential::Dataflow* dataflow,
                              EdgeStream edges) const override;

 private:
  VertexId source_;
};

/// Bellman-Ford single-source shortest paths over edge weights (the
/// paper's running differential example, Figure 2 / Table 1). Weights must
/// be non-negative for termination.
class BellmanFord : public Computation {
 public:
  explicit BellmanFord(VertexId source) : source_(source) {}
  std::string name() const override { return "bellman-ford"; }
  ResultStream GraphAnalytics(differential::Dataflow* dataflow,
                              EdgeStream edges) const override;

 private:
  VertexId source_;
};

/// PageRank with fixed iteration count and damping 0.85. Ranks are
/// deterministic 64-bit fixed-point values scaled by kRankScale (integer
/// arithmetic end-to-end, so differential and from-scratch runs agree
/// bit-for-bit). rank_0(v) = base; rank_{i+1}(v) = base +
/// Σ_{(u,v)} damp(rank_i(u)) / outdeg(u).
class PageRank : public Computation {
 public:
  static constexpr int64_t kRankScale = 1000000;

  explicit PageRank(uint32_t iterations = 10) : iterations_(iterations) {}
  std::string name() const override { return "pagerank"; }
  ResultStream GraphAnalytics(differential::Dataflow* dataflow,
                              EdgeStream edges) const override;

  static int64_t Base() { return kRankScale * 15 / 100; }
  static int64_t Damp(int64_t rank) { return rank * 85 / 100; }

 private:
  uint32_t iterations_;
};

/// Strongly connected components via the doubly-iterative coloring /
/// forward-backward peeling algorithm (Orzan; the paper's SCC workload):
/// outer loop peels settled SCCs, inner loops propagate colors forward and
/// membership backward. Every vertex incident to an edge is labeled with
/// the maximum vertex id of its SCC.
class Scc : public Computation {
 public:
  std::string name() const override { return "scc"; }
  ResultStream GraphAnalytics(differential::Dataflow* dataflow,
                              EdgeStream edges) const override;
};

/// Multiple-pair shortest paths: Bellman-Ford from each pair's source run
/// in one dataflow; the result key packs (vertex << 8 | source index).
/// At most 256 pairs; vertex ids must fit in 56 bits.
class Mpsp : public Computation {
 public:
  explicit Mpsp(std::vector<std::pair<VertexId, VertexId>> pairs)
      : pairs_(std::move(pairs)) {}
  std::string name() const override { return "mpsp"; }
  // One dataflow branch per source pair: the operator graph depends on the
  // pair count, so runs with different counts must never share cache slots.
  std::string cache_tag() const override {
    return "mpsp#" + std::to_string(pairs_.size());
  }
  ResultStream GraphAnalytics(differential::Dataflow* dataflow,
                              EdgeStream edges) const override;

  static uint64_t PackKey(VertexId v, size_t pair_index) {
    return (v << 8) | static_cast<uint64_t>(pair_index);
  }
  static VertexId UnpackVertex(uint64_t key) { return key >> 8; }
  static size_t UnpackPair(uint64_t key) { return key & 0xFF; }

  const std::vector<std::pair<VertexId, VertexId>>& pairs() const {
    return pairs_;
  }

 private:
  std::vector<std::pair<VertexId, VertexId>> pairs_;
};

}  // namespace gs::analytics

#endif  // GRAPHSURGE_ALGORITHMS_ALGORITHMS_H_
