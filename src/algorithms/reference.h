// Sequential single-shot reference implementations (union-find, BFS,
// Dijkstra, Tarjan, power iteration with the same fixed-point arithmetic as
// the differential PageRank). These serve as oracles for the differential
// algorithms in tests and as an independent check of the "scratch"
// execution strategy.
#ifndef GRAPHSURGE_ALGORITHMS_REFERENCE_H_
#define GRAPHSURGE_ALGORITHMS_REFERENCE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "graph/types.h"

namespace gs::analytics {

/// Result map: key → value, matching the differential VertexValue records.
using ResultMap = std::map<uint64_t, int64_t>;

/// Weakly connected components; label = min vertex id in the component.
/// Only vertices incident to at least one edge appear.
ResultMap WccReference(const std::vector<WeightedEdge>& edges);

/// BFS hop counts from `source`. Matches the differential semantics: the
/// root exists only if `source` has an outgoing edge; unreachable vertices
/// are absent.
ResultMap BfsReference(const std::vector<WeightedEdge>& edges,
                       VertexId source);

/// Single-source shortest paths over non-negative weights (Dijkstra),
/// same reachability semantics as BfsReference.
ResultMap SsspReference(const std::vector<WeightedEdge>& edges,
                        VertexId source);

/// PageRank after `iterations` rounds using the identical integer
/// fixed-point update as analytics::PageRank.
ResultMap PageRankReference(const std::vector<WeightedEdge>& edges,
                            uint32_t iterations);

/// Strongly connected components (iterative Tarjan); label = max vertex id
/// in the SCC (matching the coloring algorithm's root labels). Only
/// vertices incident to an edge appear.
ResultMap SccReference(const std::vector<WeightedEdge>& edges);

/// Multi-pair shortest paths; keys are Mpsp::PackKey(vertex, pair_index)
/// for every vertex reachable from pair i's source.
ResultMap MpspReference(const std::vector<WeightedEdge>& edges,
                        const std::vector<std::pair<VertexId, VertexId>>& pairs);

}  // namespace gs::analytics

#endif  // GRAPHSURGE_ALGORITHMS_REFERENCE_H_
