// The analytics computation API (paper §3.1.2, Listing 2).
//
// A Computation builds a differential dataflow that consumes the
// Graphsurge edge stream of a view and produces per-vertex results. All
// computations produce (key, int64 value) records: component ids, BFS
// levels, fixed-point PageRank ranks, or packed (vertex, source) distance
// keys for MPSP — one uniform result type keeps the view-collection
// executor fully generic, mirroring the paper's `type ResultValue`.
#ifndef GRAPHSURGE_ALGORITHMS_COMPUTATION_H_
#define GRAPHSURGE_ALGORITHMS_COMPUTATION_H_

#include <memory>
#include <string>
#include <utility>

#include "differential/differential.h"
#include "graph/types.h"

namespace gs::analytics {

/// Per-vertex result record: (key, value). For most computations the key is
/// the vertex id; MPSP packs (vertex, source-index).
using VertexValue = std::pair<uint64_t, int64_t>;

/// The edge stream type fed to computations. Unweighted algorithms ignore
/// the weight component.
using EdgeStream = differential::Stream<WeightedEdge>;
using ResultStream = differential::Stream<VertexValue>;

/// Paper Listing 2: users implement graph_analytics to turn the view's edge
/// stream into a result collection. Implementations must be pure dataflow
/// builders (no execution state) so one instance can build many dataflows.
class Computation {
 public:
  virtual ~Computation() = default;

  /// Short identifier ("wcc", "pagerank", ...) used in reports.
  virtual std::string name() const = 0;

  /// Key fragment identifying the dataflow *shape* this computation builds,
  /// used by the shared-arrangement cache (differential/arrcache.h): two
  /// computations with equal cache_tag() must construct operator graphs
  /// with identical operator orders whose cacheable arrangements hold
  /// identical content given the same edge input. Parameters that only
  /// enter as stream values (BFS/Bellman-Ford sources, PageRank iteration
  /// counts) need not be included — the cached adjacency arrangements are
  /// source-independent, which is exactly what makes them shareable across
  /// queries. Parameters that change the operator graph itself (MPSP's
  /// pair count) must be.
  virtual std::string cache_tag() const { return name(); }

  /// Builds the analytics dataflow over `edges` inside `dataflow`.
  virtual ResultStream GraphAnalytics(differential::Dataflow* dataflow,
                                      EdgeStream edges) const = 0;
};

}  // namespace gs::analytics

#endif  // GRAPHSURGE_ALGORITHMS_COMPUTATION_H_
