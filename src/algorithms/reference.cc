#include "algorithms/reference.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "algorithms/algorithms.h"

namespace gs::analytics {

namespace {

// Dense renumbering of the vertices incident to edges.
struct VertexIndex {
  std::unordered_map<uint64_t, size_t> to_dense;
  std::vector<uint64_t> to_id;

  explicit VertexIndex(const std::vector<WeightedEdge>& edges) {
    for (const WeightedEdge& e : edges) {
      Add(e.src);
      Add(e.dst);
    }
  }
  void Add(uint64_t v) {
    if (to_dense.emplace(v, to_id.size()).second) to_id.push_back(v);
  }
  size_t size() const { return to_id.size(); }
  size_t operator[](uint64_t v) const { return to_dense.at(v); }
};

struct UnionFind {
  std::vector<size_t> parent;
  explicit UnionFind(size_t n) : parent(n) {
    for (size_t i = 0; i < n; ++i) parent[i] = i;
  }
  size_t Find(size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent[Find(a)] = Find(b); }
};

}  // namespace

ResultMap WccReference(const std::vector<WeightedEdge>& edges) {
  VertexIndex index(edges);
  UnionFind uf(index.size());
  for (const WeightedEdge& e : edges) uf.Union(index[e.src], index[e.dst]);
  // Component label = min original id.
  std::vector<uint64_t> min_id(index.size(), UINT64_MAX);
  for (size_t i = 0; i < index.size(); ++i) {
    size_t root = uf.Find(i);
    min_id[root] = std::min(min_id[root], index.to_id[i]);
  }
  ResultMap result;
  for (size_t i = 0; i < index.size(); ++i) {
    result[index.to_id[i]] =
        static_cast<int64_t>(min_id[uf.Find(i)]);
  }
  return result;
}

ResultMap BfsReference(const std::vector<WeightedEdge>& edges,
                       VertexId source) {
  std::unordered_map<uint64_t, std::vector<uint64_t>> adj;
  bool source_has_out = false;
  for (const WeightedEdge& e : edges) {
    adj[e.src].push_back(e.dst);
    if (e.src == source) source_has_out = true;
  }
  ResultMap result;
  if (!source_has_out) return result;
  std::deque<uint64_t> queue = {source};
  result[source] = 0;
  while (!queue.empty()) {
    uint64_t v = queue.front();
    queue.pop_front();
    auto it = adj.find(v);
    if (it == adj.end()) continue;
    for (uint64_t w : it->second) {
      if (!result.count(w)) {
        result[w] = result[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return result;
}

ResultMap SsspReference(const std::vector<WeightedEdge>& edges,
                        VertexId source) {
  std::unordered_map<uint64_t, std::vector<std::pair<uint64_t, int64_t>>> adj;
  bool source_has_out = false;
  for (const WeightedEdge& e : edges) {
    adj[e.src].emplace_back(e.dst, e.weight);
    if (e.src == source) source_has_out = true;
  }
  ResultMap dist;
  if (!source_has_out) return dist;
  using Entry = std::pair<int64_t, uint64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  pq.push({0, source});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    auto found = dist.find(v);
    if (found != dist.end() && found->second <= d) continue;
    dist[v] = d;
    auto it = adj.find(v);
    if (it == adj.end()) continue;
    for (auto [w, c] : it->second) {
      auto fw = dist.find(w);
      if (fw == dist.end() || fw->second > d + c) pq.push({d + c, w});
    }
  }
  return dist;
}

ResultMap PageRankReference(const std::vector<WeightedEdge>& edges,
                            uint32_t iterations) {
  VertexIndex index(edges);
  std::vector<int64_t> outdeg(index.size(), 0);
  for (const WeightedEdge& e : edges) outdeg[index[e.src]]++;

  std::vector<int64_t> rank(index.size(), PageRank::Base());
  std::vector<int64_t> next(index.size());
  for (uint32_t it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), PageRank::Base());
    for (const WeightedEdge& e : edges) {
      size_t u = index[e.src];
      next[index[e.dst]] += PageRank::Damp(rank[u]) / outdeg[u];
    }
    std::swap(rank, next);
  }
  ResultMap result;
  for (size_t i = 0; i < index.size(); ++i) {
    result[index.to_id[i]] = rank[i];
  }
  return result;
}

ResultMap SccReference(const std::vector<WeightedEdge>& edges) {
  VertexIndex index(edges);
  size_t n = index.size();
  std::vector<std::vector<size_t>> adj(n);
  for (const WeightedEdge& e : edges) {
    adj[index[e.src]].push_back(index[e.dst]);
  }

  // Iterative Tarjan.
  constexpr size_t kUnvisited = SIZE_MAX;
  std::vector<size_t> low(n, 0), disc(n, kUnvisited), comp(n, kUnvisited);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  size_t counter = 0, num_comps = 0;

  struct Frame {
    size_t v;
    size_t edge_index;
  };
  for (size_t start = 0; start < n; ++start) {
    if (disc[start] != kUnvisited) continue;
    std::vector<Frame> frames = {{start, 0}};
    while (!frames.empty()) {
      Frame& f = frames.back();
      size_t v = f.v;
      if (f.edge_index == 0) {
        disc[v] = low[v] = counter++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      while (f.edge_index < adj[v].size()) {
        size_t w = adj[v][f.edge_index++];
        if (disc[w] == kUnvisited) {
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], disc[w]);
      }
      if (descended) continue;
      if (low[v] == disc[v]) {
        for (;;) {
          size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = num_comps;
          if (w == v) break;
        }
        ++num_comps;
      }
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().v] = std::min(low[frames.back().v], low[v]);
      }
    }
  }

  // Label each SCC by its max original id.
  std::vector<uint64_t> max_id(num_comps, 0);
  for (size_t i = 0; i < n; ++i) {
    max_id[comp[i]] = std::max(max_id[comp[i]], index.to_id[i]);
  }
  ResultMap result;
  for (size_t i = 0; i < n; ++i) {
    result[index.to_id[i]] = static_cast<int64_t>(max_id[comp[i]]);
  }
  return result;
}

ResultMap MpspReference(
    const std::vector<WeightedEdge>& edges,
    const std::vector<std::pair<VertexId, VertexId>>& pairs) {
  ResultMap result;
  for (size_t i = 0; i < pairs.size(); ++i) {
    ResultMap dists = SsspReference(edges, pairs[i].first);
    for (const auto& [v, d] : dists) {
      result[Mpsp::PackKey(v, i)] = d;
    }
  }
  return result;
}

}  // namespace gs::analytics
