#include "testing/fuzz_case.h"

#include <sstream>

namespace gs::testing {

std::string FuzzCase::Serialize() const {
  std::ostringstream out;
  out << "# graphsurge fuzz case v1\n";
  out << "case_seed " << case_seed << "\n";
  out << "num_nodes " << num_nodes << "\n";
  out << "use_ordering " << (use_ordering ? 1 : 0) << "\n";
  out << "workers " << workers << "\n";
  out << "schedule_seed " << schedule_seed << "\n";
  out << "compaction_period " << compaction_period << "\n";
  out << "tail_seal_threshold " << tail_seal_threshold << "\n";
  out << "drop_insert_at " << drop_insert_at << "\n";
  out << "fail_after_events " << fail_after_events << "\n";
  out << "program " << static_cast<int>(program.algo) << " " << program.param
      << "\n";
  for (const OpNode& op : program.ops) {
    out << "op " << static_cast<int>(op.kind) << " " << op.a << " " << op.b
        << " " << op.child0 << " " << op.child1 << "\n";
  }
  for (const FuzzEdge& e : edges) {
    out << "edge " << e.src << " " << e.dst << " " << e.w << " " << e.kind
        << "\n";
  }
  for (size_t epoch = 0; epoch < mutation_epochs.size(); ++epoch) {
    for (const FuzzMutation& m : mutation_epochs[epoch]) {
      out << "mutation " << epoch << " " << m.kind << " " << m.a << " " << m.b
          << " " << m.c << "\n";
    }
  }
  // Predicates go last and take the rest of the line (they contain spaces).
  for (const std::string& p : predicates) {
    out << "predicate " << p << "\n";
  }
  out << "end\n";
  return out.str();
}

StatusOr<FuzzCase> FuzzCase::Parse(const std::string& text) {
  FuzzCase c;
  c.num_nodes = 0;
  std::istringstream in(text);
  std::string line;
  bool saw_end = false;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    auto fail = [&](const std::string& what) {
      return Status::ParseError("fuzz case line " + std::to_string(line_no) +
                                ": " + what + " (" + line + ")");
    };
    if (key == "end") {
      saw_end = true;
      break;
    } else if (key == "case_seed") {
      if (!(ls >> c.case_seed)) return fail("bad case_seed");
    } else if (key == "num_nodes") {
      if (!(ls >> c.num_nodes)) return fail("bad num_nodes");
    } else if (key == "use_ordering") {
      int v = 0;
      if (!(ls >> v)) return fail("bad use_ordering");
      c.use_ordering = v != 0;
    } else if (key == "workers") {
      if (!(ls >> c.workers)) return fail("bad workers");
    } else if (key == "schedule_seed") {
      if (!(ls >> c.schedule_seed)) return fail("bad schedule_seed");
    } else if (key == "compaction_period") {
      if (!(ls >> c.compaction_period)) return fail("bad compaction_period");
    } else if (key == "tail_seal_threshold") {
      if (!(ls >> c.tail_seal_threshold)) {
        return fail("bad tail_seal_threshold");
      }
    } else if (key == "drop_insert_at") {
      if (!(ls >> c.drop_insert_at)) return fail("bad drop_insert_at");
    } else if (key == "fail_after_events") {
      if (!(ls >> c.fail_after_events)) return fail("bad fail_after_events");
    } else if (key == "program") {
      int algo = 0;
      if (!(ls >> algo >> c.program.param)) return fail("bad program");
      if (algo < 0 || algo > static_cast<int>(Algo::kRandom)) {
        return fail("unknown algo");
      }
      c.program.algo = static_cast<Algo>(algo);
    } else if (key == "op") {
      OpNode op;
      int kind = 0;
      if (!(ls >> kind >> op.a >> op.b >> op.child0 >> op.child1)) {
        return fail("bad op");
      }
      if (kind < 0 || kind > static_cast<int>(OpNode::Kind::kIterateMinProp)) {
        return fail("unknown op kind");
      }
      op.kind = static_cast<OpNode::Kind>(kind);
      c.program.ops.push_back(op);
    } else if (key == "edge") {
      FuzzEdge e;
      if (!(ls >> e.src >> e.dst >> e.w >> e.kind)) return fail("bad edge");
      c.edges.push_back(e);
    } else if (key == "mutation") {
      size_t epoch = 0;
      FuzzMutation m;
      if (!(ls >> epoch >> m.kind >> m.a >> m.b >> m.c)) {
        return fail("bad mutation");
      }
      if (m.kind < 0 || m.kind > 5) return fail("unknown mutation kind");
      if (epoch > 1024) return fail("mutation epoch out of range");
      if (c.mutation_epochs.size() <= epoch) {
        c.mutation_epochs.resize(epoch + 1);
      }
      c.mutation_epochs[epoch].push_back(m);
    } else if (key == "predicate") {
      // The predicate is the remainder of the line after "predicate ".
      std::string rest;
      std::getline(ls, rest);
      size_t start = rest.find_first_not_of(' ');
      if (start == std::string::npos) return fail("empty predicate");
      c.predicates.push_back(rest.substr(start));
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  if (!saw_end) {
    return Status::ParseError("fuzz case missing 'end' marker");
  }
  if (c.num_nodes == 0) {
    return Status::ParseError("fuzz case num_nodes must be >= 1");
  }
  for (const FuzzEdge& e : c.edges) {
    if (e.src >= c.num_nodes || e.dst >= c.num_nodes) {
      return Status::ParseError("fuzz case edge endpoint out of range");
    }
  }
  if (c.predicates.empty()) {
    return Status::ParseError("fuzz case needs at least one view predicate");
  }
  for (const OpNode& op : c.program.ops) {
    int index = static_cast<int>(&op - c.program.ops.data());
    if (op.child0 >= index || op.child1 >= index) {
      return Status::ParseError("fuzz case op children must precede the op");
    }
  }
  return c;
}

std::string FuzzCase::ReproSource() const {
  std::ostringstream out;
  out << "// Auto-generated reproducer for graphsurge fuzz case "
      << case_seed << ".\n";
  out << "// Replays the embedded case through the full execution-mode\n";
  out << "// oracle (see src/testing/oracle.h). Alternatively feed the\n";
  out << "// matching .case file to `fuzz_differential --replay`.\n";
  out << "//\n";
  out << "// Build: add this file as an executable linked against\n";
  out << "// gs_testing (see src/testing/CMakeLists.txt).\n";
  out << "#include <iostream>\n";
  out << "#include <string>\n";
  out << "\n";
  out << "#include \"testing/fuzz_case.h\"\n";
  out << "#include \"testing/oracle.h\"\n";
  out << "\n";
  out << "static const char kCase[] = R\"gsfuzz(\n";
  out << Serialize();
  out << ")gsfuzz\";\n";
  out << "\n";
  out << "int main() {\n";
  out << "  auto parsed = gs::testing::FuzzCase::Parse(kCase);\n";
  out << "  if (!parsed.ok()) {\n";
  out << "    std::cerr << parsed.status().ToString() << \"\\n\";\n";
  out << "    return 2;\n";
  out << "  }\n";
  out << "  std::string log;\n";
  out << "  gs::Status s = gs::testing::RunOracle(parsed.value(), &log);\n";
  out << "  std::cout << log;\n";
  out << "  if (!s.ok()) {\n";
  out << "    std::cout << \"FAIL: \" << s.ToString() << \"\\n\";\n";
  out << "    return 1;\n";
  out << "  }\n";
  out << "  std::cout << \"PASS\\n\";\n";
  out << "  return 0;\n";
  out << "}\n";
  return out.str();
}

}  // namespace gs::testing
