#include "testing/oracle.h"

#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "common/metrics.h"
#include "differential/fuzz_hooks.h"
#include "graph/mutation.h"
#include "gvdl/predicate.h"
#include "testing/fuzz_program.h"
#include "testing/generators.h"
#include "views/collection.h"
#include "views/executor.h"
#include "views/live.h"

namespace gs::testing {

namespace fuzz = ::gs::differential::fuzz;

namespace {

using analytics::ResultMap;

/// Sums every sample of one metric family in Prometheus exposition text
/// (same matching rules as the metrics tests: `family{...} v` or
/// `family v`, prefix families excluded).
uint64_t SumFamily(const std::string& text, const std::string& family) {
  uint64_t sum = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind(family, 0) != 0 || line.size() <= family.size()) continue;
    const char next = line[family.size()];
    if (next != '{' && next != ' ') continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    sum += std::strtoull(line.c_str() + space + 1, nullptr, 10);
  }
  return sum;
}

std::string DescribeMap(const ResultMap& m) {
  std::ostringstream out;
  out << m.size() << " records";
  size_t shown = 0;
  for (const auto& [k, v] : m) {
    if (++shown > 4) {
      out << " ...";
      break;
    }
    out << " (" << k << "," << v << ")";
  }
  return out.str();
}

/// First-divergence comparison of two per-view result vectors.
Status CompareResults(const std::string& mode,
                      const std::vector<ResultMap>& ref,
                      const std::vector<ResultMap>& got) {
  if (ref.size() != got.size()) {
    return Status::Internal("mode " + mode + ": view count mismatch (ref " +
                            std::to_string(ref.size()) + ", got " +
                            std::to_string(got.size()) + ")");
  }
  for (size_t t = 0; t < ref.size(); ++t) {
    if (ref[t] == got[t]) continue;
    std::ostringstream out;
    out << "mode " << mode << ": view " << t << " diverged; ref has "
        << DescribeMap(ref[t]) << ", got " << DescribeMap(got[t]);
    for (const auto& [k, v] : ref[t]) {
      auto it = got[t].find(k);
      if (it == got[t].end()) {
        out << "; first missing key " << k << " (ref value " << v << ")";
        break;
      }
      if (it->second != v) {
        out << "; first wrong key " << k << " (ref " << v << ", got "
            << it->second << ")";
        break;
      }
    }
    for (const auto& [k, v] : got[t]) {
      if (!ref[t].count(k)) {
        out << "; first extra key " << k << " (got value " << v << ")";
        break;
      }
    }
    return Status::Internal(out.str());
  }
  return Status::Ok();
}

/// The schedule-fuzz hook set shared by the perturbed modes. op_order
/// scrambling is only legal without shared arrangements (arrange.h relies
/// on creation-order ties), so it is opt-in per mode.
fuzz::Hooks PerturbHooks(const FuzzCase& c, bool scramble_op_order,
                         bool shuffle_exchange) {
  fuzz::Hooks h;
  h.seed = c.schedule_seed;
  h.scramble_seq = true;
  h.scramble_op_order = scramble_op_order;
  h.shuffle_exchange = shuffle_exchange;
  h.compaction_period = c.compaction_period;
  h.tail_seal_threshold = c.tail_seal_threshold;
  h.drop_insert_at = c.drop_insert_at;
  return h;
}

/// mutate: the streaming-ingest oracle. Applies the case's mutation epochs
/// through the incremental path — ApplyMutationBatch + collection
/// maintenance (UpdateCollectionForMutations) + a LiveRun fed
/// epoch-by-epoch — then rebuilds every epoch from scratch (fresh graph,
/// replayed batches, fresh materialization, batch executor) and requires
/// every (epoch, view) result cell to match. At the final epoch the
/// maintained difference stream must also be bit-identical to the scratch
/// rematerialization (identity order only: the ordering optimizer may
/// legitimately pick a different permutation on the mutated graph).
Status MutateMode(const FuzzCase& c, const gvdl::ViewCollectionDef& def,
                  const analytics::Computation& computation,
                  std::ostringstream& out) {
  GS_ASSIGN_OR_RETURN(PropertyGraph live_graph, BuildGraph(c));
  views::MaterializeOptions mopts;
  mopts.use_ordering = c.use_ordering;
  GS_ASSIGN_OR_RETURN(views::MaterializedCollection live_col,
                      views::MaterializeCollection(live_graph, def, mopts));
  const int weight_column = live_graph.FindWeightColumn("w");

  views::LiveRunOptions lopts;
  lopts.weight_column = weight_column;
  lopts.dataflow.num_workers =
      (fuzz::Mix(c.schedule_seed ^ 0x717) & 1) != 0 ? c.workers : 1;
  GS_ASSIGN_OR_RETURN(
      std::unique_ptr<views::LiveRun> live,
      views::LiveRun::Start(computation, live_graph, &live_col, lopts));

  // Incremental side: resolve + apply each epoch once, recording the
  // resolved batches so the reload side replays the identical mutations.
  std::vector<MutationBatch> resolved;
  for (const std::vector<FuzzMutation>& raw : c.mutation_epochs) {
    MutationBatch batch = ResolveFuzzBatch(live_graph, raw);
    MutationEffects effects;
    GS_RETURN_IF_ERROR(ApplyMutationBatch(&live_graph, batch, &effects));
    GS_RETURN_IF_ERROR(views::UpdateCollectionForMutations(
        &live_col, live_graph, effects.touched_edges));
    GS_RETURN_IF_ERROR(live->AdvanceEpoch(effects.touched_edges));
    resolved.push_back(std::move(batch));
  }

  // Reload side, every epoch from scratch.
  for (uint32_t epoch = 0; epoch <= resolved.size(); ++epoch) {
    GS_ASSIGN_OR_RETURN(PropertyGraph fresh, BuildGraph(c));
    for (uint32_t b = 0; b < epoch; ++b) {
      GS_RETURN_IF_ERROR(ApplyMutationBatch(&fresh, resolved[b]));
    }
    GS_ASSIGN_OR_RETURN(views::MaterializedCollection fresh_col,
                        views::MaterializeCollection(fresh, def, mopts));
    views::ExecutionOptions eo;
    eo.strategy = splitting::Strategy::kDiffOnly;
    eo.weight_column = weight_column;
    eo.capture_results = true;
    eo.dataflow.num_workers = 1;
    GS_ASSIGN_OR_RETURN(
        views::ExecutionResult scratch,
        views::RunOnCollection(computation, fresh, fresh_col, eo));

    // Positions may be permuted differently on the two sides; compare per
    // view *definition*.
    std::vector<ResultMap> ref_by_def(def.views.size());
    for (size_t s = 0; s < fresh_col.num_views(); ++s) {
      ref_by_def[fresh_col.order[s]] = std::move(scratch.results[s]);
    }
    std::vector<ResultMap> live_by_def(def.views.size());
    for (size_t t = 0; t < live_col.num_views(); ++t) {
      auto cell = live->ResultsAt(epoch, t);
      if (!cell.ok()) {
        return Status(cell.status().code(), "mutate epoch " +
                                                std::to_string(epoch) +
                                                ": " + cell.status().message());
      }
      live_by_def[live_col.order[t]] = std::move(cell).value();
    }
    out << "  mutate-e" << epoch << ":";
    for (const ResultMap& m : live_by_def) out << " " << HashResults(m);
    out << "\n";
    GS_RETURN_IF_ERROR(CompareResults("mutate epoch " + std::to_string(epoch),
                                      ref_by_def, live_by_def));

    if (epoch == resolved.size() && !c.use_ordering) {
      for (size_t t = 0; t < fresh_col.num_views(); ++t) {
        if (live_col.diffs.ViewDiffs(t) != fresh_col.diffs.ViewDiffs(t)) {
          return Status::Internal(
              "mutate: maintained diff stream for view " + std::to_string(t) +
              " differs from scratch rematerialization");
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace

uint64_t HashResults(const ResultMap& results) {
  uint64_t h = fuzz::Mix(results.size());
  for (const auto& [k, v] : results) {
    h = fuzz::Mix(h ^ k);
    h = fuzz::Mix(h ^ static_cast<uint64_t>(v));
  }
  return h;
}

Status CheckArrangementGaugesZero() {
  const std::string text = metrics::Registry::Global().ExpositionText();
  const uint64_t bytes = SumFamily(text, "gs_arrangement_bytes");
  const uint64_t batches = SumFamily(text, "gs_arrangement_batches");
  if (bytes != 0 || batches != 0) {
    return Status::Internal(
        "arrangement gauges nonzero after teardown: bytes=" +
        std::to_string(bytes) + " batches=" + std::to_string(batches));
  }
  return Status::Ok();
}

Status RunOracle(const FuzzCase& c, std::string* log) {
  // Header goes straight to *log so even setup failures (graph build,
  // predicate parse, materialization) are attributed to their case.
  {
    std::ostringstream header;
    header << "case " << c.case_seed << ": nodes=" << c.num_nodes
           << " edges=" << c.edges.size() << " views=" << c.predicates.size()
           << " algo=" << static_cast<int>(c.program.algo)
           << " workers=" << c.workers << "\n";
    *log += header.str();
  }
  std::ostringstream out;

  GS_ASSIGN_OR_RETURN(PropertyGraph graph, BuildGraph(c));
  GS_ASSIGN_OR_RETURN(gvdl::ViewCollectionDef def, BuildCollectionDef(c));
  views::MaterializeOptions mopts;
  mopts.use_ordering = c.use_ordering;
  GS_ASSIGN_OR_RETURN(views::MaterializedCollection collection,
                      views::MaterializeCollection(graph, def, mopts));
  FuzzComputation computation(c.program);
  const int weight_column = graph.FindWeightColumn("w");

  auto base_options = [&](size_t workers, bool arranged) {
    views::ExecutionOptions eo;
    eo.strategy = splitting::Strategy::kDiffOnly;
    eo.weight_column = weight_column;
    eo.capture_results = true;
    eo.dataflow.num_workers = workers;
    eo.dataflow.use_arrangements = arranged;
    return eo;
  };

  // Runs one mode under the given hooks; checks the memory gauges return to
  // zero afterwards and appends the per-view result hashes to the log.
  auto run_mode =
      [&](const std::string& mode, const views::ExecutionOptions& eo,
          const fuzz::Hooks& hooks) -> StatusOr<std::vector<ResultMap>> {
    std::vector<ResultMap> results;
    {
      fuzz::ScopedHooks scoped(hooks);
      auto r = views::RunOnCollection(computation, graph, collection, eo);
      if (!r.ok()) {
        return Status(r.status().code(),
                      "mode " + mode + ": " + r.status().message());
      }
      results = std::move(r).value().results;
    }
    Status gauges = CheckArrangementGaugesZero();
    if (!gauges.ok()) {
      return Status::Internal("mode " + mode + ": " + gauges.message());
    }
    out << "  " << mode << ":";
    for (const ResultMap& m : results) out << " " << HashResults(m);
    out << "\n";
    return results;
  };

  auto finish = [&](Status status) {
    *log += out.str();
    return status;
  };

  // ref: the golden serial unarranged run, hooks off.
  auto ref = run_mode("ref", base_options(1, false), fuzz::Hooks{});
  if (!ref.ok()) return finish(ref.status());

  // serial-scrambled: every tie-break scrambled, injected compactions,
  // tiny tail threshold.
  auto scrambled = run_mode("serial-scrambled", base_options(1, false),
                            PerturbHooks(c, /*scramble_op_order=*/true,
                                         /*shuffle_exchange=*/false));
  if (!scrambled.ok()) return finish(scrambled.status());
  GS_RETURN_IF_ERROR(
      finish(CompareResults("serial-scrambled", *ref, *scrambled)));
  out.str("");

  // serial-arranged: shared arrangements; seq-only scrambling.
  auto arranged = run_mode("serial-arranged", base_options(1, true),
                           PerturbHooks(c, false, false));
  if (!arranged.ok()) return finish(arranged.status());
  GS_RETURN_IF_ERROR(
      finish(CompareResults("serial-arranged", *ref, *arranged)));
  out.str("");

  // sharded: the case's worker count; arranged-or-not by seed coin;
  // exchange-delivery shuffling on top.
  const bool sharded_arranged = (fuzz::Mix(c.schedule_seed ^ 0xa44) & 1) != 0;
  auto sharded =
      run_mode("sharded-w" + std::to_string(c.workers),
               base_options(c.workers, sharded_arranged),
               PerturbHooks(c, false, /*shuffle_exchange=*/true));
  if (!sharded.ok()) return finish(sharded.status());
  GS_RETURN_IF_ERROR(finish(CompareResults("sharded", *ref, *sharded)));
  out.str("");

  // scratch: every view from scratch — no cross-view sharing to hide
  // state corruption behind.
  {
    views::ExecutionOptions eo = base_options(1, false);
    eo.strategy = splitting::Strategy::kScratch;
    auto scratch = run_mode("scratch", eo, fuzz::Hooks{});
    if (!scratch.ok()) return finish(scratch.status());
    GS_RETURN_IF_ERROR(finish(CompareResults("scratch", *ref, *scratch)));
    out.str("");
  }

  // reference: sequential non-dataflow implementations, per view (named
  // algorithms only — random DAGs have no independent reference).
  if (c.program.algo != Algo::kRandom) {
    std::vector<ResultMap> expected;
    for (size_t t = 0; t < collection.num_views(); ++t) {
      const gvdl::ExprPtr& predicate =
          def.views[collection.order[t]].predicate;
      GS_ASSIGN_OR_RETURN(
          gvdl::CompiledEdgePredicate compiled,
          gvdl::CompiledEdgePredicate::Compile(predicate, graph));
      std::vector<WeightedEdge> view_edges;
      for (EdgeId id = 0; id < graph.num_edges(); ++id) {
        if (compiled.Evaluate(id)) {
          view_edges.push_back(graph.ResolveWeighted(id, weight_column));
        }
      }
      switch (c.program.algo) {
        case Algo::kWcc:
          expected.push_back(analytics::WccReference(view_edges));
          break;
        case Algo::kBfs:
          expected.push_back(analytics::BfsReference(
              view_edges, static_cast<VertexId>(c.program.param)));
          break;
        case Algo::kBellmanFord:
          expected.push_back(analytics::SsspReference(
              view_edges, static_cast<VertexId>(c.program.param)));
          break;
        case Algo::kPageRank:
          expected.push_back(analytics::PageRankReference(
              view_edges, static_cast<uint32_t>(c.program.param)));
          break;
        case Algo::kRandom:
          break;
      }
    }
    out << "  reference:";
    for (const ResultMap& m : expected) out << " " << HashResults(m);
    out << "\n";
    GS_RETURN_IF_ERROR(finish(CompareResults("reference", expected, *ref)));
    out.str("");
  }

  // mutate: streaming mutation epochs — incremental maintenance + live
  // differential feed vs reload-from-scratch at every epoch.
  if (!c.mutation_epochs.empty()) {
    Status mutate = MutateMode(c, def, computation, out);
    if (!mutate.ok()) return finish(mutate);
    Status gauges = CheckArrangementGaugesZero();
    if (!gauges.ok()) {
      return finish(Status::Internal("mode mutate: " + gauges.message()));
    }
    *log += out.str();
    out.str("");
  }

  // fault: injected mid-run failure. The run must fail with a clean
  // Status (or finish if the budget was never hit), leave the gauges at
  // zero, and a clean retry must reproduce the golden results.
  if (c.fail_after_events != 0) {
    fuzz::Hooks h = PerturbHooks(c, true, false);
    h.fail_after_events = c.fail_after_events;
    Status fault_status;
    {
      fuzz::ScopedHooks scoped(h);
      auto r = views::RunOnCollection(computation, graph, collection,
                                      base_options(1, false));
      fault_status = r.ok() ? Status::Ok() : r.status();
    }
    Status gauges = CheckArrangementGaugesZero();
    if (!gauges.ok()) {
      return finish(
          Status::Internal("mode fault: " + gauges.message()));
    }
    out << "  fault: "
        << (fault_status.ok() ? "not-triggered" : "triggered") << "\n";
    auto retry = run_mode("fault-retry", base_options(1, false),
                          fuzz::Hooks{});
    if (!retry.ok()) return finish(retry.status());
    GS_RETURN_IF_ERROR(finish(CompareResults("fault-retry", *ref, *retry)));
    out.str("");
  }

  return finish(Status::Ok());
}

}  // namespace gs::testing
