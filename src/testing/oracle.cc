#include "testing/oracle.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "common/metrics.h"
#include "differential/fuzz_hooks.h"
#include "graph/mutation.h"
#include "gvdl/predicate.h"
#include "server/query_server.h"
#include "testing/fuzz_program.h"
#include "testing/generators.h"
#include "views/collection.h"
#include "views/executor.h"
#include "views/live.h"

namespace gs::testing {

namespace fuzz = ::gs::differential::fuzz;

namespace {

using analytics::ResultMap;

/// Sums every sample of one metric family in Prometheus exposition text
/// (same matching rules as the metrics tests: `family{...} v` or
/// `family v`, prefix families excluded).
uint64_t SumFamily(const std::string& text, const std::string& family) {
  uint64_t sum = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind(family, 0) != 0 || line.size() <= family.size()) continue;
    const char next = line[family.size()];
    if (next != '{' && next != ' ') continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    sum += std::strtoull(line.c_str() + space + 1, nullptr, 10);
  }
  return sum;
}

std::string DescribeMap(const ResultMap& m) {
  std::ostringstream out;
  out << m.size() << " records";
  size_t shown = 0;
  for (const auto& [k, v] : m) {
    if (++shown > 4) {
      out << " ...";
      break;
    }
    out << " (" << k << "," << v << ")";
  }
  return out.str();
}

/// First-divergence comparison of two per-view result vectors.
Status CompareResults(const std::string& mode,
                      const std::vector<ResultMap>& ref,
                      const std::vector<ResultMap>& got) {
  if (ref.size() != got.size()) {
    return Status::Internal("mode " + mode + ": view count mismatch (ref " +
                            std::to_string(ref.size()) + ", got " +
                            std::to_string(got.size()) + ")");
  }
  for (size_t t = 0; t < ref.size(); ++t) {
    if (ref[t] == got[t]) continue;
    std::ostringstream out;
    out << "mode " << mode << ": view " << t << " diverged; ref has "
        << DescribeMap(ref[t]) << ", got " << DescribeMap(got[t]);
    for (const auto& [k, v] : ref[t]) {
      auto it = got[t].find(k);
      if (it == got[t].end()) {
        out << "; first missing key " << k << " (ref value " << v << ")";
        break;
      }
      if (it->second != v) {
        out << "; first wrong key " << k << " (ref " << v << ", got "
            << it->second << ")";
        break;
      }
    }
    for (const auto& [k, v] : got[t]) {
      if (!ref[t].count(k)) {
        out << "; first extra key " << k << " (got value " << v << ")";
        break;
      }
    }
    return Status::Internal(out.str());
  }
  return Status::Ok();
}

/// The schedule-fuzz hook set shared by the perturbed modes. op_order
/// scrambling is only legal without shared arrangements (arrange.h relies
/// on creation-order ties), so it is opt-in per mode.
fuzz::Hooks PerturbHooks(const FuzzCase& c, bool scramble_op_order,
                         bool shuffle_exchange) {
  fuzz::Hooks h;
  h.seed = c.schedule_seed;
  h.scramble_seq = true;
  h.scramble_op_order = scramble_op_order;
  h.shuffle_exchange = shuffle_exchange;
  h.compaction_period = c.compaction_period;
  h.tail_seal_threshold = c.tail_seal_threshold;
  h.drop_insert_at = c.drop_insert_at;
  return h;
}

/// mutate: the streaming-ingest oracle. Applies the case's mutation epochs
/// through the incremental path — ApplyMutationBatch + collection
/// maintenance (UpdateCollectionForMutations) + a LiveRun fed
/// epoch-by-epoch — then rebuilds every epoch from scratch (fresh graph,
/// replayed batches, fresh materialization, batch executor) and requires
/// every (epoch, view) result cell to match. At the final epoch the
/// maintained difference stream must also be bit-identical to the scratch
/// rematerialization (identity order only: the ordering optimizer may
/// legitimately pick a different permutation on the mutated graph).
Status MutateMode(const FuzzCase& c, const gvdl::ViewCollectionDef& def,
                  const analytics::Computation& computation,
                  std::ostringstream& out) {
  GS_ASSIGN_OR_RETURN(PropertyGraph live_graph, BuildGraph(c));
  views::MaterializeOptions mopts;
  mopts.use_ordering = c.use_ordering;
  GS_ASSIGN_OR_RETURN(views::MaterializedCollection live_col,
                      views::MaterializeCollection(live_graph, def, mopts));
  const int weight_column = live_graph.FindWeightColumn("w");

  views::LiveRunOptions lopts;
  lopts.weight_column = weight_column;
  lopts.dataflow.num_workers =
      (fuzz::Mix(c.schedule_seed ^ 0x717) & 1) != 0 ? c.workers : 1;
  GS_ASSIGN_OR_RETURN(
      std::unique_ptr<views::LiveRun> live,
      views::LiveRun::Start(computation, live_graph, &live_col, lopts));

  // Incremental side: resolve + apply each epoch once, recording the
  // resolved batches so the reload side replays the identical mutations.
  std::vector<MutationBatch> resolved;
  for (const std::vector<FuzzMutation>& raw : c.mutation_epochs) {
    MutationBatch batch = ResolveFuzzBatch(live_graph, raw);
    MutationEffects effects;
    GS_RETURN_IF_ERROR(ApplyMutationBatch(&live_graph, batch, &effects));
    GS_RETURN_IF_ERROR(views::UpdateCollectionForMutations(
        &live_col, live_graph, effects.touched_edges));
    GS_RETURN_IF_ERROR(live->AdvanceEpoch(effects.touched_edges));
    resolved.push_back(std::move(batch));
  }

  // Reload side, every epoch from scratch.
  for (uint32_t epoch = 0; epoch <= resolved.size(); ++epoch) {
    GS_ASSIGN_OR_RETURN(PropertyGraph fresh, BuildGraph(c));
    for (uint32_t b = 0; b < epoch; ++b) {
      GS_RETURN_IF_ERROR(ApplyMutationBatch(&fresh, resolved[b]));
    }
    GS_ASSIGN_OR_RETURN(views::MaterializedCollection fresh_col,
                        views::MaterializeCollection(fresh, def, mopts));
    views::ExecutionOptions eo;
    eo.strategy = splitting::Strategy::kDiffOnly;
    eo.weight_column = weight_column;
    eo.capture_results = true;
    eo.dataflow.num_workers = 1;
    GS_ASSIGN_OR_RETURN(
        views::ExecutionResult scratch,
        views::RunOnCollection(computation, fresh, fresh_col, eo));

    // Positions may be permuted differently on the two sides; compare per
    // view *definition*.
    std::vector<ResultMap> ref_by_def(def.views.size());
    for (size_t s = 0; s < fresh_col.num_views(); ++s) {
      ref_by_def[fresh_col.order[s]] = std::move(scratch.results[s]);
    }
    std::vector<ResultMap> live_by_def(def.views.size());
    for (size_t t = 0; t < live_col.num_views(); ++t) {
      auto cell = live->ResultsAt(epoch, t);
      if (!cell.ok()) {
        return Status(cell.status().code(), "mutate epoch " +
                                                std::to_string(epoch) +
                                                ": " + cell.status().message());
      }
      live_by_def[live_col.order[t]] = std::move(cell).value();
    }
    out << "  mutate-e" << epoch << ":";
    for (const ResultMap& m : live_by_def) out << " " << HashResults(m);
    out << "\n";
    GS_RETURN_IF_ERROR(CompareResults("mutate epoch " + std::to_string(epoch),
                                      ref_by_def, live_by_def));

    if (epoch == resolved.size() && !c.use_ordering) {
      for (size_t t = 0; t < fresh_col.num_views(); ++t) {
        if (live_col.diffs.ViewDiffs(t) != fresh_col.diffs.ViewDiffs(t)) {
          return Status::Internal(
              "mutate: maintained diff stream for view " + std::to_string(t) +
              " differs from scratch rematerialization");
        }
      }
    }
  }
  return Status::Ok();
}

/// One blocking HTTP POST over loopback with Connection: close; returns
/// the response body or an error naming the non-200 status. The serve mode
/// deliberately speaks raw sockets — the point is to exercise the wire
/// path, not an in-process shortcut.
StatusOr<std::string> ServePost(uint16_t port, const std::string& path,
                                const std::string& body) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("serve: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal("serve: connect() failed");
  }
  const std::string request =
      "POST " + path + " HTTP/1.1\r\nHost: fuzz\r\n"
      "Content-Type: application/json\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t header_end = raw.find("\r\n\r\n");
  if (raw.rfind("HTTP/1.1 ", 0) != 0 || header_end == std::string::npos) {
    return Status::Internal("serve: malformed response to " + path);
  }
  const int code = std::atoi(raw.c_str() + 9);
  std::string reply = raw.substr(header_end + 4);
  if (code != 200) {
    return Status::Internal("serve: " + path + " answered " +
                            std::to_string(code) + ": " + reply);
  }
  return reply;
}

/// Pulls every {"view": ..., "values": {...}} pair out of a GET RESULTS
/// body (the server renders integers only, so flat scanning suffices).
bool ParseServeResults(const std::string& body,
                       std::map<std::string, ResultMap>* out) {
  size_t pos = 0;
  for (;;) {
    size_t v = body.find("{\"view\": \"", pos);
    if (v == std::string::npos) return true;
    v += sizeof("{\"view\": \"") - 1;
    size_t vend = body.find('"', v);
    if (vend == std::string::npos) return false;
    const std::string name = body.substr(v, vend - v);
    size_t open = body.find("\"values\": {", vend);
    if (open == std::string::npos) return false;
    size_t p = open + sizeof("\"values\": {") - 1;
    ResultMap m;
    while (p < body.size() && body[p] != '}') {
      if (body[p] == ',' || body[p] == ' ') {
        ++p;
        continue;
      }
      if (body[p] != '"') return false;
      char* end = nullptr;
      const uint64_t key = std::strtoull(body.c_str() + p + 1, &end, 10);
      p = static_cast<size_t>(end - body.c_str());
      if (p >= body.size() || body[p] != '"') return false;
      ++p;  // closing key quote
      if (p >= body.size() || body[p] != ':') return false;
      const int64_t value =
          std::strtoll(body.c_str() + p + 1, &end, 10);
      p = static_cast<size_t>(end - body.c_str());
      m[key] = value;
    }
    if (p >= body.size()) return false;
    (*out)[name] = std::move(m);
    pos = p;
  }
}

/// serve: the HTTP query front end as an independent execution path. The
/// case's collection definition and a RUN statement travel over a real
/// loopback socket to a server/query_server.h instance hosting the case's
/// graph; the parsed GET RESULTS must match the golden run per view
/// definition. Named algorithms only — random DAGs have no statement form.
Status ServeMode(const FuzzCase& c, const gvdl::ViewCollectionDef& def,
                 const std::vector<ResultMap>& ref_by_def, int weight_column,
                 std::ostringstream& out) {
  std::string spec;
  switch (c.program.algo) {
    case Algo::kWcc:
      spec = "wcc";
      break;
    case Algo::kBfs:
      spec = "bfs(" + std::to_string(c.program.param) + ")";
      break;
    case Algo::kBellmanFord:
      spec = "bellman-ford(" + std::to_string(c.program.param) + ")";
      break;
    case Algo::kPageRank:
      spec = "pagerank(" + std::to_string(c.program.param) + ")";
      break;
    case Algo::kRandom:
      return Status::Ok();
  }

  server::QueryServerOptions sopts;
  sopts.num_threads = 2;
  server::QueryServer server(sopts);
  {
    GS_ASSIGN_OR_RETURN(PropertyGraph graph, BuildGraph(c));
    GS_RETURN_IF_ERROR(server.AddGraph(def.on, std::move(graph)));
  }
  GS_RETURN_IF_ERROR(server.Start(0));

  const std::string session = "fuzz-" + std::to_string(c.case_seed);
  auto query = [&](const std::string& statement) -> StatusOr<std::string> {
    // Generated predicates use single-quoted string literals and an
    // ASCII alphabet without '"' or '\', so no JSON escaping is needed.
    return ServePost(server.port(), "/query",
                     "{\"session\": \"" + session + "\", \"statement\": \"" +
                         statement + "\"}");
  };

  std::string create = "create view collection " + def.name + " on " + def.on;
  for (size_t i = 0; i < c.predicates.size(); ++i) {
    create += (i == 0 ? " [" : ", [");
    create += "v" + std::to_string(i) + ": " + c.predicates[i] + "]";
  }
  GS_RETURN_IF_ERROR(query(create).status());

  std::string run = "run " + spec + " on " + def.name;
  if (weight_column >= 0) {
    run += " weight " + std::to_string(weight_column);
  }
  GS_RETURN_IF_ERROR(query(run).status());

  GS_ASSIGN_OR_RETURN(std::string results_body, query("get results"));
  std::map<std::string, ResultMap> served;
  if (!ParseServeResults(results_body, &served)) {
    return Status::Internal("serve: unparseable results body: " +
                            results_body);
  }
  if (served.size() != def.views.size()) {
    return Status::Internal(
        "serve: expected " + std::to_string(def.views.size()) +
        " views, got " + std::to_string(served.size()));
  }
  std::vector<ResultMap> got_by_def(def.views.size());
  for (size_t i = 0; i < def.views.size(); ++i) {
    auto it = served.find("v" + std::to_string(i));
    if (it == served.end()) {
      return Status::Internal("serve: missing view v" + std::to_string(i) +
                              " in results");
    }
    got_by_def[i] = std::move(it->second);
  }
  out << "  serve:";
  for (const ResultMap& m : got_by_def) out << " " << HashResults(m);
  out << "\n";
  return CompareResults("serve", ref_by_def, got_by_def);
}

}  // namespace

uint64_t HashResults(const ResultMap& results) {
  uint64_t h = fuzz::Mix(results.size());
  for (const auto& [k, v] : results) {
    h = fuzz::Mix(h ^ k);
    h = fuzz::Mix(h ^ static_cast<uint64_t>(v));
  }
  return h;
}

Status CheckArrangementGaugesZero() {
  const std::string text = metrics::Registry::Global().ExpositionText();
  const uint64_t bytes = SumFamily(text, "gs_arrangement_bytes");
  const uint64_t batches = SumFamily(text, "gs_arrangement_batches");
  if (bytes != 0 || batches != 0) {
    return Status::Internal(
        "arrangement gauges nonzero after teardown: bytes=" +
        std::to_string(bytes) + " batches=" + std::to_string(batches));
  }
  return Status::Ok();
}

Status RunOracle(const FuzzCase& c, std::string* log) {
  // Header goes straight to *log so even setup failures (graph build,
  // predicate parse, materialization) are attributed to their case.
  {
    std::ostringstream header;
    header << "case " << c.case_seed << ": nodes=" << c.num_nodes
           << " edges=" << c.edges.size() << " views=" << c.predicates.size()
           << " algo=" << static_cast<int>(c.program.algo)
           << " workers=" << c.workers << "\n";
    *log += header.str();
  }
  std::ostringstream out;

  GS_ASSIGN_OR_RETURN(PropertyGraph graph, BuildGraph(c));
  GS_ASSIGN_OR_RETURN(gvdl::ViewCollectionDef def, BuildCollectionDef(c));
  views::MaterializeOptions mopts;
  mopts.use_ordering = c.use_ordering;
  GS_ASSIGN_OR_RETURN(views::MaterializedCollection collection,
                      views::MaterializeCollection(graph, def, mopts));
  FuzzComputation computation(c.program);
  const int weight_column = graph.FindWeightColumn("w");

  auto base_options = [&](size_t workers, bool arranged) {
    views::ExecutionOptions eo;
    eo.strategy = splitting::Strategy::kDiffOnly;
    eo.weight_column = weight_column;
    eo.capture_results = true;
    eo.dataflow.num_workers = workers;
    eo.dataflow.use_arrangements = arranged;
    return eo;
  };

  // Runs one mode under the given hooks; checks the memory gauges return to
  // zero afterwards and appends the per-view result hashes to the log.
  auto run_mode =
      [&](const std::string& mode, const views::ExecutionOptions& eo,
          const fuzz::Hooks& hooks) -> StatusOr<std::vector<ResultMap>> {
    std::vector<ResultMap> results;
    {
      fuzz::ScopedHooks scoped(hooks);
      auto r = views::RunOnCollection(computation, graph, collection, eo);
      if (!r.ok()) {
        return Status(r.status().code(),
                      "mode " + mode + ": " + r.status().message());
      }
      results = std::move(r).value().results;
    }
    Status gauges = CheckArrangementGaugesZero();
    if (!gauges.ok()) {
      return Status::Internal("mode " + mode + ": " + gauges.message());
    }
    out << "  " << mode << ":";
    for (const ResultMap& m : results) out << " " << HashResults(m);
    out << "\n";
    return results;
  };

  auto finish = [&](Status status) {
    *log += out.str();
    return status;
  };

  // ref: the golden serial unarranged run, hooks off.
  auto ref = run_mode("ref", base_options(1, false), fuzz::Hooks{});
  if (!ref.ok()) return finish(ref.status());

  // serial-scrambled: every tie-break scrambled, injected compactions,
  // tiny tail threshold.
  auto scrambled = run_mode("serial-scrambled", base_options(1, false),
                            PerturbHooks(c, /*scramble_op_order=*/true,
                                         /*shuffle_exchange=*/false));
  if (!scrambled.ok()) return finish(scrambled.status());
  GS_RETURN_IF_ERROR(
      finish(CompareResults("serial-scrambled", *ref, *scrambled)));
  out.str("");

  // serial-arranged: shared arrangements; seq-only scrambling.
  auto arranged = run_mode("serial-arranged", base_options(1, true),
                           PerturbHooks(c, false, false));
  if (!arranged.ok()) return finish(arranged.status());
  GS_RETURN_IF_ERROR(
      finish(CompareResults("serial-arranged", *ref, *arranged)));
  out.str("");

  // sharded: the case's worker count; arranged-or-not by seed coin;
  // exchange-delivery shuffling on top.
  const bool sharded_arranged = (fuzz::Mix(c.schedule_seed ^ 0xa44) & 1) != 0;
  auto sharded =
      run_mode("sharded-w" + std::to_string(c.workers),
               base_options(c.workers, sharded_arranged),
               PerturbHooks(c, false, /*shuffle_exchange=*/true));
  if (!sharded.ok()) return finish(sharded.status());
  GS_RETURN_IF_ERROR(finish(CompareResults("sharded", *ref, *sharded)));
  out.str("");

  // scratch: every view from scratch — no cross-view sharing to hide
  // state corruption behind.
  {
    views::ExecutionOptions eo = base_options(1, false);
    eo.strategy = splitting::Strategy::kScratch;
    auto scratch = run_mode("scratch", eo, fuzz::Hooks{});
    if (!scratch.ok()) return finish(scratch.status());
    GS_RETURN_IF_ERROR(finish(CompareResults("scratch", *ref, *scratch)));
    out.str("");
  }

  // reference: sequential non-dataflow implementations, per view (named
  // algorithms only — random DAGs have no independent reference).
  if (c.program.algo != Algo::kRandom) {
    std::vector<ResultMap> expected;
    for (size_t t = 0; t < collection.num_views(); ++t) {
      const gvdl::ExprPtr& predicate =
          def.views[collection.order[t]].predicate;
      GS_ASSIGN_OR_RETURN(
          gvdl::CompiledEdgePredicate compiled,
          gvdl::CompiledEdgePredicate::Compile(predicate, graph));
      std::vector<WeightedEdge> view_edges;
      for (EdgeId id = 0; id < graph.num_edges(); ++id) {
        if (compiled.Evaluate(id)) {
          view_edges.push_back(graph.ResolveWeighted(id, weight_column));
        }
      }
      switch (c.program.algo) {
        case Algo::kWcc:
          expected.push_back(analytics::WccReference(view_edges));
          break;
        case Algo::kBfs:
          expected.push_back(analytics::BfsReference(
              view_edges, static_cast<VertexId>(c.program.param)));
          break;
        case Algo::kBellmanFord:
          expected.push_back(analytics::SsspReference(
              view_edges, static_cast<VertexId>(c.program.param)));
          break;
        case Algo::kPageRank:
          expected.push_back(analytics::PageRankReference(
              view_edges, static_cast<uint32_t>(c.program.param)));
          break;
        case Algo::kRandom:
          break;
      }
    }
    out << "  reference:";
    for (const ResultMap& m : expected) out << " " << HashResults(m);
    out << "\n";
    GS_RETURN_IF_ERROR(finish(CompareResults("reference", expected, *ref)));
    out.str("");
  }

  // serve: the same collection and run through the HTTP front end over a
  // real loopback socket — named algorithms only.
  if (c.program.algo != Algo::kRandom) {
    std::vector<ResultMap> ref_by_def(def.views.size());
    for (size_t t = 0; t < collection.num_views(); ++t) {
      ref_by_def[collection.order[t]] = (*ref)[t];
    }
    Status serve = ServeMode(c, def, ref_by_def, weight_column, out);
    if (!serve.ok()) return finish(serve);
    Status gauges = CheckArrangementGaugesZero();
    if (!gauges.ok()) {
      return finish(Status::Internal("mode serve: " + gauges.message()));
    }
    *log += out.str();
    out.str("");
  }

  // mutate: streaming mutation epochs — incremental maintenance + live
  // differential feed vs reload-from-scratch at every epoch.
  if (!c.mutation_epochs.empty()) {
    Status mutate = MutateMode(c, def, computation, out);
    if (!mutate.ok()) return finish(mutate);
    Status gauges = CheckArrangementGaugesZero();
    if (!gauges.ok()) {
      return finish(Status::Internal("mode mutate: " + gauges.message()));
    }
    *log += out.str();
    out.str("");
  }

  // fault: injected mid-run failure. The run must fail with a clean
  // Status (or finish if the budget was never hit), leave the gauges at
  // zero, and a clean retry must reproduce the golden results.
  if (c.fail_after_events != 0) {
    fuzz::Hooks h = PerturbHooks(c, true, false);
    h.fail_after_events = c.fail_after_events;
    Status fault_status;
    {
      fuzz::ScopedHooks scoped(h);
      auto r = views::RunOnCollection(computation, graph, collection,
                                      base_options(1, false));
      fault_status = r.ok() ? Status::Ok() : r.status();
    }
    Status gauges = CheckArrangementGaugesZero();
    if (!gauges.ok()) {
      return finish(
          Status::Internal("mode fault: " + gauges.message()));
    }
    out << "  fault: "
        << (fault_status.ok() ? "not-triggered" : "triggered") << "\n";
    auto retry = run_mode("fault-retry", base_options(1, false),
                          fuzz::Hooks{});
    if (!retry.ok()) return finish(retry.status());
    GS_RETURN_IF_ERROR(finish(CompareResults("fault-retry", *ref, *retry)));
    out.str("");
  }

  return finish(Status::Ok());
}

}  // namespace gs::testing
