// Delta-debugging failure minimization: given a FuzzCase that fails the
// oracle, greedily shrink it — drop views, ddmin the edge list, shrink the
// node count, truncate random programs, clear schedule knobs — keeping a
// candidate only if it still fails. The result is the minimal reproducer
// written into repro_<seed>.case artifacts.
#ifndef GRAPHSURGE_TESTING_MINIMIZE_H_
#define GRAPHSURGE_TESTING_MINIMIZE_H_

#include <cstddef>

#include "testing/fuzz_case.h"

namespace gs::testing {

/// Shrinks `input` (which must fail RunOracle) to a smaller failing case.
/// Runs at most `budget` oracle evaluations; deterministic. Returns the
/// input unchanged if nothing smaller still fails.
FuzzCase Minimize(const FuzzCase& input, size_t budget = 300);

}  // namespace gs::testing

#endif  // GRAPHSURGE_TESTING_MINIMIZE_H_
