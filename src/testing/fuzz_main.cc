// fuzz_differential: deterministic property-based fuzzing of the
// differential engine over random view collections.
//
//   fuzz_differential --seed 1 --runs 200 --max-nodes 24
//   fuzz_differential --replay repro_12345.case
//
// Identical invocations produce byte-identical output; see
// src/testing/fuzz_driver.h and DESIGN.md §8.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/crash_dump.h"
#include "common/timeseries.h"
#include "common/watchdog.h"
#include "testing/fuzz_driver.h"

namespace {

void Usage() {
  std::cerr
      << "usage: fuzz_differential [options]\n"
      << "  --seed N        campaign seed (default 1)\n"
      << "  --runs N        number of cases to run (default 100)\n"
      << "  --max-nodes N   max nodes per generated graph (default 24)\n"
      << "  --out-dir DIR   where to write repro_* artifacts (default .)\n"
      << "  --replay FILE   replay a repro_*.case file and exit\n";
}

bool ParseUint(const char* text, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  gs::InstallCrashHandlers();
  // Opt-in health plane (GRAPHSURGE_SAMPLE_MS / GRAPHSURGE_WATCHDOG): a
  // stalled or wedged fuzz case then produces a flight_*.json dump in
  // GRAPHSURGE_FLIGHT_DIR alongside the repro_* artifacts.
  gs::timeseries::Sampler::MaybeStartFromEnv();
  gs::watchdog::Watchdog::MaybeStartFromEnv();
  gs::testing::FuzzOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (!v || !ParseUint(v, &options.seed)) return Usage(), 2;
    } else if (arg == "--runs") {
      const char* v = next();
      if (!v || !ParseUint(v, &options.runs)) return Usage(), 2;
    } else if (arg == "--max-nodes") {
      const char* v = next();
      if (!v || !ParseUint(v, &options.max_nodes)) return Usage(), 2;
    } else if (arg == "--out-dir") {
      const char* v = next();
      if (!v) return Usage(), 2;
      options.out_dir = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return Usage(), 2;
      options.replay_path = v;
    } else if (arg == "--inject-bug") {
      // Undocumented: plants a known lost-insert bug to exercise the
      // catch -> minimize -> repro pipeline end to end.
      options.inject_bug = true;
    } else if (arg == "--emit-gvdl-corpus") {
      // Undocumented: prints the malformed-predicate corpus used by
      // tests/gvdl_corpus/.
      options.emit_gvdl_corpus = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      Usage();
      return 2;
    }
  }
  return gs::testing::RunFuzz(options, std::cout);
}
