// FuzzComputation: turns a ProgramSpec (fuzz_case.h) into a differential
// dataflow using the real operator library — the named paper algorithms or
// a random operator DAG (map/filter/join/reduce/distinct/negate/iterate).
// Like every Computation it is a pure builder: the executor instantiates
// the plan once per engine (and once per worker shard in sharded mode), and
// the arranged/unarranged plan shape follows DataflowOptions.
#ifndef GRAPHSURGE_TESTING_FUZZ_PROGRAM_H_
#define GRAPHSURGE_TESTING_FUZZ_PROGRAM_H_

#include <string>

#include "algorithms/computation.h"
#include "testing/fuzz_case.h"

namespace gs::testing {

class FuzzComputation : public analytics::Computation {
 public:
  explicit FuzzComputation(ProgramSpec spec) : spec_(std::move(spec)) {}

  std::string name() const override { return "fuzz"; }
  analytics::ResultStream GraphAnalytics(
      differential::Dataflow* dataflow,
      analytics::EdgeStream edges) const override;

 private:
  ProgramSpec spec_;
};

}  // namespace gs::testing

#endif  // GRAPHSURGE_TESTING_FUZZ_PROGRAM_H_
