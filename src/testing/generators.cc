#include "testing/generators.h"

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "differential/fuzz_hooks.h"
#include "gvdl/parser.h"

namespace gs::testing {

namespace {

namespace fuzz = ::gs::differential::fuzz;

const char* kCompareOps[] = {"<", "<=", ">", ">=", "=", "!="};
const char* kTags[] = {"red", "green", "blue"};

/// One random atomic predicate over the generated schema.
std::string AtomicPredicate(Rng* rng) {
  switch (rng->Index(8)) {
    case 0:
      return std::string("w ") + kCompareOps[rng->Index(6)] + " " +
             std::to_string(rng->Uniform(0, 16));
    case 1:
      return std::string("kind ") + (rng->Bernoulli(0.5) ? "=" : "!=") + " " +
             std::to_string(rng->Uniform(0, 3));
    case 2:
      return std::string("src.grp ") + kCompareOps[rng->Index(6)] + " " +
             std::to_string(rng->Uniform(0, 4));
    case 3:
      return std::string("dst.grp ") + kCompareOps[rng->Index(6)] + " " +
             std::to_string(rng->Uniform(0, 4));
    case 4:
      return std::string("tag = '") + kTags[rng->Index(3)] + "'";
    case 5:
      return std::string(rng->Bernoulli(0.5) ? "src" : "dst") + ".hub = " +
             (rng->Bernoulli(0.5) ? "true" : "false");
    case 6:
      return "src.grp = dst.grp";
    default:
      // Guaranteed-full atom; keeps conjunctions from collapsing to empty
      // too often.
      return "w >= 0";
  }
}

/// Random predicate with and/or/not nesting up to `depth`.
/// (Built via += rather than operator+ chains: GCC 12 emits a spurious
/// -Wrestrict on `const char* + std::string&&` under -O2.)
std::string RandomPredicate(Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.45)) return AtomicPredicate(rng);
  std::string out;
  switch (rng->Index(3)) {
    case 0:
      out += "(";
      out += RandomPredicate(rng, depth - 1);
      out += ") and (";
      out += RandomPredicate(rng, depth - 1);
      out += ")";
      break;
    case 1:
      out += "(";
      out += RandomPredicate(rng, depth - 1);
      out += ") or (";
      out += RandomPredicate(rng, depth - 1);
      out += ")";
      break;
    default:
      out += "not (";
      out += RandomPredicate(rng, depth - 1);
      out += ")";
      break;
  }
  return out;
}

ProgramSpec RandomProgram(Rng* rng, uint64_t num_nodes) {
  ProgramSpec spec;
  spec.algo = Algo::kRandom;
  size_t n_ops = 2 + rng->Index(7);
  int iterates = 0;
  for (size_t i = 0; i < n_ops; ++i) {
    OpNode op;
    if (i == 0) {
      op.kind = rng->Bernoulli(0.5) ? OpNode::Kind::kBaseSrcDst
                                    : OpNode::Kind::kBaseDstWeight;
    } else {
      // Weighted pick: maps/filters/reduces common, joins and the iterate
      // rarer (they dominate runtime), extra bases occasionally so joins
      // see genuinely different inputs.
      uint64_t roll = rng->Index(20);
      if (roll < 2) {
        op.kind = rng->Bernoulli(0.5) ? OpNode::Kind::kBaseSrcDst
                                      : OpNode::Kind::kBaseDstWeight;
      } else if (roll < 6) {
        op.kind = OpNode::Kind::kMap;
      } else if (roll < 9) {
        op.kind = OpNode::Kind::kFilter;
      } else if (roll < 11) {
        op.kind = OpNode::Kind::kJoin;
      } else if (roll < 13) {
        op.kind = OpNode::Kind::kReduceMin;
      } else if (roll < 14) {
        op.kind = OpNode::Kind::kReduceMax;
      } else if (roll < 15) {
        op.kind = OpNode::Kind::kCount;
      } else if (roll < 17) {
        op.kind = OpNode::Kind::kDistinct;
      } else if (roll < 19) {
        op.kind = OpNode::Kind::kConcatNegate;
      } else if (iterates < 1) {
        op.kind = OpNode::Kind::kIterateMinProp;
        ++iterates;
      } else {
        op.kind = OpNode::Kind::kMap;
      }
    }
    if (i > 0) {
      op.child0 = static_cast<int>(rng->Index(i));
      op.child1 = static_cast<int>(rng->Index(i));
    }
    op.a = rng->Uniform(0, 16);
    op.b = rng->Uniform(0, 7);
    spec.ops.push_back(op);
  }
  (void)num_nodes;
  return spec;
}

}  // namespace

FuzzCase GenerateCase(uint64_t case_seed, uint64_t max_nodes) {
  Rng rng(case_seed);
  FuzzCase c;
  c.case_seed = case_seed;
  if (max_nodes < 1) max_nodes = 1;
  c.num_nodes = 1 + rng.Index(max_nodes);

  // Edges: power-law sources (hubs), uniform destinations, with forced
  // self-loops and exact duplicates. Nodes the power law never picks stay
  // isolated; num_edges may be 0 (empty-graph views).
  uint64_t target_edges = rng.Index(3 * c.num_nodes + 1);
  for (uint64_t i = 0; i < target_edges; ++i) {
    if (!c.edges.empty() && rng.Bernoulli(0.1)) {
      c.edges.push_back(c.edges[rng.Index(c.edges.size())]);  // multi-edge
      continue;
    }
    FuzzEdge e;
    e.src = rng.PowerLaw(c.num_nodes, 1.2);
    e.dst = rng.Bernoulli(0.1) ? e.src : rng.Index(c.num_nodes);
    e.w = rng.Uniform(0, 16);
    e.kind = rng.Uniform(0, 3);
    c.edges.push_back(e);
  }

  // Views: 2–5 predicates; sometimes a guaranteed-empty view, sometimes a
  // disjoint consecutive pair (worst case for differential sharing: the
  // difference set is both views' union).
  size_t n_views = 2 + rng.Index(4);
  for (size_t v = 0; v < n_views; ++v) {
    if (rng.Bernoulli(0.12)) {
      c.predicates.push_back("w > 100");  // empty: w is in [0, 16]
      continue;
    }
    if (v + 1 < n_views && rng.Bernoulli(0.15)) {
      c.predicates.push_back("kind = 0");
      c.predicates.push_back("kind = 1");
      ++v;
      continue;
    }
    c.predicates.push_back(RandomPredicate(&rng, 2));
  }

  // Program: paper algorithms half the time (they have independent
  // sequential references), random operator DAGs the other half.
  switch (rng.Index(8)) {
    case 0:
      c.program.algo = Algo::kWcc;
      break;
    case 1:
      c.program.algo = Algo::kBfs;
      c.program.param = static_cast<int64_t>(rng.Index(c.num_nodes));
      break;
    case 2:
      c.program.algo = Algo::kBellmanFord;
      c.program.param = static_cast<int64_t>(rng.Index(c.num_nodes));
      break;
    case 3:
      c.program.algo = Algo::kPageRank;
      c.program.param = 1 + static_cast<int64_t>(rng.Index(4));
      break;
    default:
      c.program = RandomProgram(&rng, c.num_nodes);
      break;
  }

  static const uint64_t kWorkerChoices[] = {2, 3, 4, 7};
  c.workers = kWorkerChoices[rng.Index(4)];
  c.use_ordering = rng.Bernoulli(0.5);
  c.schedule_seed = fuzz::Mix(case_seed ^ 0x5c5c5c5cull);
  static const uint64_t kCompactionChoices[] = {0, 0, 3, 7, 64};
  c.compaction_period = kCompactionChoices[rng.Index(5)];
  static const uint64_t kSealChoices[] = {0, 0, 1, 2, 8};
  c.tail_seal_threshold = kSealChoices[rng.Index(5)];

  // Streaming mutations (mutate oracle mode) half the time: 1–3 epochs of
  // 1–8 raw mutations each, resolved against the live graph at run time.
  if (rng.Bernoulli(0.5)) {
    size_t n_epochs = 1 + rng.Index(3);
    for (size_t e = 0; e < n_epochs; ++e) {
      std::vector<FuzzMutation> epoch;
      size_t n_mutations = 1 + rng.Index(8);
      for (size_t m = 0; m < n_mutations; ++m) {
        FuzzMutation mut;
        mut.kind = static_cast<int64_t>(rng.Index(6));
        mut.a = rng.Index(1 << 16);
        mut.b = rng.Index(1 << 16);
        mut.c = rng.Index(1 << 16);
        epoch.push_back(mut);
      }
      c.mutation_epochs.push_back(std::move(epoch));
    }
  }
  return c;
}

StatusOr<PropertyGraph> BuildGraph(const FuzzCase& c) {
  PropertyGraph g;
  g.AddNodes(c.num_nodes);
  GS_RETURN_IF_ERROR(g.node_properties().AddColumn("grp", PropertyType::kInt));
  GS_RETURN_IF_ERROR(g.node_properties().AddColumn("hub", PropertyType::kBool));
  for (uint64_t v = 0; v < c.num_nodes; ++v) {
    GS_RETURN_IF_ERROR(g.node_properties().AppendRow(
        {PropertyValue(static_cast<int64_t>(v % 5)),
         PropertyValue(v % 3 == 0)}));
  }
  GS_RETURN_IF_ERROR(g.edge_properties().AddColumn("w", PropertyType::kInt));
  GS_RETURN_IF_ERROR(g.edge_properties().AddColumn("kind", PropertyType::kInt));
  GS_RETURN_IF_ERROR(
      g.edge_properties().AddColumn("tag", PropertyType::kString));
  for (const FuzzEdge& e : c.edges) {
    GS_ASSIGN_OR_RETURN(EdgeId id, g.AddEdge(e.src, e.dst));
    (void)id;
    GS_RETURN_IF_ERROR(g.edge_properties().AppendRow(
        {PropertyValue(e.w), PropertyValue(e.kind),
         PropertyValue(std::string(kTags[e.kind % 3]))}));
  }
  return g;
}

StatusOr<gvdl::ViewCollectionDef> BuildCollectionDef(const FuzzCase& c) {
  gvdl::ViewCollectionDef def;
  def.name = "fuzz_collection";
  def.on = "fuzz_graph";
  for (size_t i = 0; i < c.predicates.size(); ++i) {
    GS_ASSIGN_OR_RETURN(gvdl::ExprPtr expr,
                        gvdl::ParsePredicate(c.predicates[i]));
    std::string view_name = "v";
    view_name += std::to_string(i);
    def.views.push_back({std::move(view_name), std::move(expr)});
  }
  return def;
}

MutationBatch ResolveFuzzBatch(const PropertyGraph& graph,
                               const std::vector<FuzzMutation>& raw) {
  MutationBatch batch;
  // Resolve against the graph *before* the batch: ids are stable (removals
  // tombstone), so modulo the pre-batch counts stays meaningful, and
  // CheckMutationBatch tracks batch-internal adds/removes for us.
  const uint64_t n = graph.num_nodes();
  const uint64_t m = graph.num_edges();
  for (const FuzzMutation& r : raw) {
    Mutation candidate;
    switch (r.kind) {
      case 0: {  // add node, BuildGraph node schema (grp, hub)
        candidate = Mutation::AddNode(
            {PropertyValue(static_cast<int64_t>(r.a % 5)),
             PropertyValue(r.b % 3 == 0)});
        break;
      }
      case 1: {  // remove node
        candidate = Mutation::RemoveNode(r.a % n);
        break;
      }
      case 2: {  // add edge, BuildGraph edge schema (w, kind, tag)
        const int64_t kind = static_cast<int64_t>(r.c % 3);
        candidate = Mutation::AddEdge(
            r.a % n, r.b % n,
            {PropertyValue(static_cast<int64_t>(r.c % 16)),
             PropertyValue(kind), PropertyValue(std::string(kTags[kind]))});
        break;
      }
      case 3: {  // remove edge
        if (m == 0) continue;
        candidate = Mutation::RemoveEdge(r.a % m);
        break;
      }
      case 4: {  // set node property
        if (r.b % 2 == 0) {
          candidate = Mutation::SetNodeProperty(
              r.a % n, "grp", PropertyValue(static_cast<int64_t>(r.c % 5)));
        } else {
          candidate = Mutation::SetNodeProperty(r.a % n, "hub",
                                                PropertyValue(r.c % 2 == 0));
        }
        break;
      }
      default: {  // set edge property
        if (m == 0) continue;
        const EdgeId target = r.a % m;
        switch (r.b % 3) {
          case 0:
            candidate = Mutation::SetEdgeProperty(
                target, "w", PropertyValue(static_cast<int64_t>(r.c % 16)));
            break;
          case 1:
            candidate = Mutation::SetEdgeProperty(
                target, "kind", PropertyValue(static_cast<int64_t>(r.c % 3)));
            break;
          default:
            candidate = Mutation::SetEdgeProperty(
                target, "tag", PropertyValue(std::string(kTags[r.c % 3])));
            break;
        }
        break;
      }
    }
    // Keep the mutation only if the whole batch stays valid (e.g. a target
    // may be dead, or removed earlier in this very batch).
    batch.push_back(std::move(candidate));
    if (!CheckMutationBatch(graph, batch).ok()) batch.pop_back();
  }
  return batch;
}

std::vector<std::string> GenerateMalformedPredicates(uint64_t seed,
                                                     size_t count) {
  Rng rng(seed);
  std::vector<std::string> out;
  std::set<std::string> seen;
  // A few fixed pathological shapes first: they document entire bug classes
  // (stack exhaustion, unterminated tokens) rather than random typos.
  std::vector<std::string> fixed = {
      "-- a comment is not a predicate",
      "and",
      "w =",
      "= 3",
      "w < < 3",
      "src. = 1",
      "w = 'unterminated",
      "((((((((w = 1",
      "not",
      std::string(300, '(') + "w = 1",
  };
  {
    std::string deep;
    for (int i = 0; i < 300; ++i) deep += "not ";
    deep += "w = 1";
    fixed.push_back(deep);
  }
  for (std::string& f : fixed) {
    if (out.size() >= count) break;
    if (gvdl::ParsePredicate(f).ok()) continue;
    if (seen.insert(f).second) out.push_back(f);
  }
  // Then mutations of valid predicates. Every candidate is verified to be
  // rejected — a mutation that still parses (e.g. truncation at a clause
  // boundary) is discarded.
  while (out.size() < count) {
    std::string valid = RandomPredicate(&rng, 2);
    std::string mutated = valid;
    switch (rng.Index(6)) {
      case 0:  // truncate mid-string
        mutated = valid.substr(0, rng.Index(valid.size()) + 1);
        break;
      case 1:  // dangling boolean operator
        mutated = valid + (rng.Bernoulli(0.5) ? " and" : " or");
        break;
      case 2: {  // unbalance parentheses
        size_t p = mutated.find(')');
        if (p != std::string::npos) {
          mutated.erase(p, 1);
        } else {
          mutated = "(" + mutated;
        }
        break;
      }
      case 3: {  // break a string quote
        size_t q = mutated.find('\'');
        if (q != std::string::npos) {
          mutated.erase(q, 1);
        } else {
          mutated += " = '";
        }
        break;
      }
      case 4:  // junk bytes
        mutated.insert(rng.Index(mutated.size() + 1), "@#;");
        break;
      default:  // duplicated comparison operator
        mutated += " = =";
        break;
    }
    if (gvdl::ParsePredicate(mutated).ok()) continue;
    if (seen.insert(mutated).second) out.push_back(mutated);
  }
  return out;
}

}  // namespace gs::testing
