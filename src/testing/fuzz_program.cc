#include "testing/fuzz_program.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "algorithms/algorithms.h"
#include "differential/differential.h"

namespace gs::testing {

namespace dd = ::gs::differential;

using VV = analytics::VertexValue;  // (uint64 key, int64 value)
using KeyedU64 = std::pair<uint64_t, uint64_t>;

namespace {

/// Builds the converging min-label propagation loop: seed labels from the
/// child stream, propagate min(value) + increment along the (symmetrized,
/// deduplicated) edge relation. increment 0 is a WCC-style component min,
/// increment 1 a BFS-style distance; both are monotone fixed points, so the
/// loop converges regardless of schedule.
dd::Stream<VV> IterateMinProp(dd::Dataflow* dataflow,
                              analytics::EdgeStream edges,
                              dd::Stream<VV> child, int64_t increment) {
  auto seeds = dd::ReduceMin(child);
  auto sym = edges.FlatMap(
      [](const WeightedEdge& e, std::vector<KeyedU64>* out) {
        out->push_back({e.src, e.dst});
        out->push_back({e.dst, e.src});
      });
  auto prop = [increment](const uint64_t&, const int64_t& v,
                          const uint64_t& dst) {
    return std::make_pair(dst, v + increment);
  };
  if (dataflow->options().use_arrangements) {
    auto adjacency = dd::DistinctArranged(sym);
    return dd::Iterate<VV>(
        seeds, [&](dd::LoopScope& scope, dd::Stream<VV> inner) {
          auto adj_in = adjacency.Enter(scope);
          auto seeds_in = scope.Enter(seeds);
          auto messages = dd::JoinArranged(inner, adj_in, prop);
          return dd::ReduceMin(messages.Concat(seeds_in));
        });
  }
  auto adjacency = dd::Distinct(sym);
  return dd::Iterate<VV>(
      seeds, [&](dd::LoopScope& scope, dd::Stream<VV> inner) {
        auto adj_in = scope.Enter(adjacency);
        auto seeds_in = scope.Enter(seeds);
        auto messages = dd::Join(inner, adj_in, prop);
        return dd::ReduceMin(messages.Concat(seeds_in));
      });
}

dd::Stream<VV> BuildDag(dd::Dataflow* dataflow, analytics::EdgeStream edges,
                        const std::vector<OpNode>& ops) {
  std::vector<dd::Stream<VV>> built;
  built.reserve(ops.size());
  // Total on any spec (minimization truncates programs to prefixes): out-of
  // -range children clamp to the previous node, a non-base node at index 0
  // degrades to a base.
  auto child = [&](int c) -> dd::Stream<VV> {
    if (c < 0 || c >= static_cast<int>(built.size())) c = built.size() - 1;
    return built[c];
  };
  for (size_t i = 0; i < ops.size(); ++i) {
    const OpNode& op = ops[i];
    OpNode::Kind kind = op.kind;
    if (i == 0 && kind != OpNode::Kind::kBaseSrcDst &&
        kind != OpNode::Kind::kBaseDstWeight) {
      kind = OpNode::Kind::kBaseSrcDst;
    }
    const int64_t a = op.a;
    const int64_t b = op.b;
    dd::Stream<VV> s = [&] {
      switch (kind) {
        case OpNode::Kind::kBaseSrcDst:
          return edges.Map([](const WeightedEdge& e) {
            return std::make_pair(e.src, static_cast<int64_t>(e.dst));
          });
        case OpNode::Kind::kBaseDstWeight:
          return edges.Map([](const WeightedEdge& e) {
            return std::make_pair(e.dst, e.weight);
          });
        case OpNode::Kind::kMap:
          if (b % 2 == 0) {
            return child(op.child0).Map([a](const VV& r) {
              return std::make_pair(r.first, r.second + a);
            });
          }
          return child(op.child0).Map([a](const VV& r) {
            return std::make_pair(r.first % static_cast<uint64_t>(a + 1),
                                  r.second);
          });
        case OpNode::Kind::kFilter:
          switch (b % 3) {
            case 0:
              return child(op.child0).Filter([a](const VV& r) {
                return ((r.second % 2) + 2) % 2 == a % 2;
              });
            case 1:
              return child(op.child0).Filter(
                  [a](const VV& r) { return r.second >= a; });
            default:
              return child(op.child0).Filter([a](const VV& r) {
                return r.first % 3 == static_cast<uint64_t>(a % 3);
              });
          }
        case OpNode::Kind::kJoin: {
          auto fn = [](const uint64_t& k, const int64_t& v1,
                       const int64_t& v2) {
            return std::make_pair(k, std::min(v1, v2));
          };
          if (dataflow->options().use_arrangements) {
            return dd::JoinArranged(child(op.child0),
                                    dd::Arrange(child(op.child1)), fn);
          }
          return dd::Join(child(op.child0), child(op.child1), fn);
        }
        case OpNode::Kind::kReduceMin:
          return dd::ReduceMin(child(op.child0));
        case OpNode::Kind::kReduceMax:
          return dd::ReduceMax(child(op.child0));
        case OpNode::Kind::kCount:
          return dd::Count(child(op.child0));
        case OpNode::Kind::kDistinct:
          return dd::Distinct(child(op.child0));
        case OpNode::Kind::kConcatNegate: {
          // x + (-(x where v >= a)): matching records cancel to net zero,
          // driving genuinely negative diffs through downstream operators
          // while keeping accumulated multiplicities non-negative.
          auto x = child(op.child0);
          return x.Concat(
              x.Filter([a](const VV& r) { return r.second >= a; }).Negate());
        }
        case OpNode::Kind::kIterateMinProp:
          return IterateMinProp(dataflow, edges, child(op.child0), a % 2);
      }
      return child(op.child0);  // unreachable
    }();
    built.push_back(std::move(s));
  }
  return built.back();
}

}  // namespace

analytics::ResultStream FuzzComputation::GraphAnalytics(
    dd::Dataflow* dataflow, analytics::EdgeStream edges) const {
  switch (spec_.algo) {
    case Algo::kWcc:
      return analytics::Wcc().GraphAnalytics(dataflow, edges);
    case Algo::kBfs:
      return analytics::Bfs(static_cast<VertexId>(spec_.param))
          .GraphAnalytics(dataflow, edges);
    case Algo::kBellmanFord:
      return analytics::BellmanFord(static_cast<VertexId>(spec_.param))
          .GraphAnalytics(dataflow, edges);
    case Algo::kPageRank:
      return analytics::PageRank(static_cast<uint32_t>(spec_.param))
          .GraphAnalytics(dataflow, edges);
    case Algo::kRandom:
      break;
  }
  dd::Stream<VV> root =
      spec_.ops.empty()
          ? edges.Map([](const WeightedEdge& e) {
              return std::make_pair(e.src, static_cast<int64_t>(e.dst));
            })
          : BuildDag(dataflow, edges, spec_.ops);
  // The executor's capture path requires unit multiplicities; Distinct
  // normalizes whatever the random DAG produced.
  return dd::Distinct(root);
}

}  // namespace gs::testing
