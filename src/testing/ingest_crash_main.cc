// wal_crash_tool: the crash-recovery harness behind CI's kill -9 job.
//
// Three modes over one deterministic workload (fixed base graph, per-epoch
// batches that are a pure function of (graph state, epoch index)):
//
//   --ingest N --wal PATH [--pause-ms M] [--sync-every K]
//       WAL-backed streaming ingest through the Graphsurge facade: applies
//       N mutation batches, maintaining a 4-view collection and a live WCC
//       run, printing "batch <i> applied epoch=<e>" after each (flushed, so
//       a kill -9 leaves an honest high-water mark on stdout).
//
//   --verify --wal PATH --out FILE
//       Restart recovery: rebuilds the base graph, replays the WAL (torn
//       tails recover silently), and dumps the recovered epoch plus
//       per-view analytics results to FILE.
//
//   --reference E --out FILE
//       Ground truth: applies the first E epochs in-process with no WAL and
//       dumps the same format. CI asserts `diff` of the two dumps is empty:
//       WAL replay reconstructs graph and per-view results byte-identically.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "algorithms/algorithms.h"
#include "api/graphsurge.h"
#include "common/random.h"
#include "graph/graph.h"
#include "graph/mutation.h"
#include "testing/oracle.h"
#include "views/collection.h"
#include "views/executor.h"

namespace gs {
namespace {

constexpr uint64_t kNodes = 64;
constexpr uint64_t kEdges = 256;
constexpr uint64_t kGraphSeed = 20260809;

PropertyGraph BuildBaseGraph() {
  PropertyGraph g;
  g.AddNodes(kNodes);
  Status s = g.edge_properties().AddColumn("w", PropertyType::kInt);
  if (!s.ok()) std::abort();
  Rng rng(kGraphSeed);
  for (uint64_t i = 0; i < kEdges; ++i) {
    uint64_t src = rng.Index(kNodes);
    uint64_t dst = rng.Index(kNodes);
    if (!g.AddEdge(src, dst).ok()) std::abort();
    s = g.edge_properties().AppendRow({PropertyValue(rng.Uniform(0, 15))});
    if (!s.ok()) std::abort();
  }
  return g;
}

std::vector<std::function<bool(EdgeId)>> MakePredicates(
    const PropertyGraph& g, int wcol) {
  std::vector<std::function<bool(EdgeId)>> preds;
  for (int64_t threshold : {4, 8, 12}) {
    preds.push_back([&g, wcol, threshold](EdgeId e) {
      return g.ResolveWeighted(e, wcol).weight <= threshold;
    });
  }
  preds.push_back([](EdgeId) { return true; });
  return preds;
}

/// Epoch `epoch`'s batch — a pure function of (current graph, epoch), so
/// the ingest and reference runs generate identical mutation streams.
MutationBatch MakeBatch(const PropertyGraph& g, uint64_t epoch) {
  Rng rng(1000 + epoch);
  MutationBatch b;
  auto keep_if_valid = [&](Mutation m) {
    b.push_back(std::move(m));
    if (!CheckMutationBatch(g, b).ok()) b.pop_back();
  };
  const uint64_t n = g.num_nodes();
  const uint64_t m = g.num_edges();
  for (int i = 0; i < 3; ++i) {
    keep_if_valid(Mutation::SetEdgeProperty(rng.Index(m), "w",
                                            PropertyValue(rng.Uniform(0, 15))));
  }
  for (int i = 0; i < 2; ++i) {
    keep_if_valid(Mutation::AddEdge(rng.Index(n), rng.Index(n),
                                    {PropertyValue(rng.Uniform(0, 15))}));
  }
  keep_if_valid(Mutation::RemoveEdge(rng.Index(m)));
  if (epoch % 5 == 4) keep_if_valid(Mutation::RemoveNode(rng.Index(n)));
  return b;
}

Status SetUpSystem(Graphsurge* system, const std::string& wal_path) {
  GS_RETURN_IF_ERROR(system->AddGraph("g", BuildBaseGraph()));
  if (!wal_path.empty()) {
    GS_RETURN_IF_ERROR(system->EnableWal("g", wal_path));
  }
  GS_ASSIGN_OR_RETURN(const PropertyGraph* g, system->GetGraph("g"));
  const int wcol = g->FindWeightColumn("w");
  return system->CreateCollection("c", "g", {"w4", "w8", "w12", "all"},
                                  MakePredicates(*g, wcol));
}

/// The deterministic state dump both --verify and --reference produce.
Status DumpState(Graphsurge* system, const std::string& out_path) {
  GS_ASSIGN_OR_RETURN(const PropertyGraph* g, system->GetGraph("g"));
  GS_ASSIGN_OR_RETURN(uint64_t epoch, system->GraphEpoch("g"));
  GS_ASSIGN_OR_RETURN(const views::MaterializedCollection* col,
                      system->GetCollection("c"));

  std::ofstream out(out_path, std::ios::trunc);
  if (!out.good()) {
    return Status::IoError("cannot write '" + out_path + "'");
  }
  out << "epoch " << epoch << "\n";
  out << "nodes " << g->num_live_nodes() << " edges " << g->num_live_edges()
      << "\n";
  out << "collection total_diffs " << col->total_diffs << "\n";
  for (size_t t = 0; t < col->num_views(); ++t) {
    out << "view " << t << " size " << col->view_sizes[t] << " diffs "
        << col->diff_sizes[t] << "\n";
  }

  analytics::Wcc wcc;
  analytics::PageRank pagerank(5);
  analytics::Bfs bfs(0);
  const analytics::Computation* algos[] = {&wcc, &pagerank, &bfs};
  for (const analytics::Computation* algo : algos) {
    views::ExecutionOptions eo;
    eo.capture_results = true;
    GS_ASSIGN_OR_RETURN(views::ExecutionResult run,
                        system->RunComputation(*algo, "c", eo));
    out << algo->name();
    for (const analytics::ResultMap& m : run.results) {
      out << " " << testing::HashResults(m);
    }
    out << "\n";
  }
  out.flush();
  return out.good() ? Status::Ok()
                    : Status::IoError("write failed for '" + out_path + "'");
}

Status RunIngest(const std::string& wal_path, uint64_t n_batches,
                 uint64_t pause_ms, uint32_t sync_every) {
  Graphsurge system;
  GS_RETURN_IF_ERROR(system.AddGraph("g", BuildBaseGraph()));
  wal::WalWriterOptions wopts;
  wopts.sync_every_n_appends = sync_every;
  GS_RETURN_IF_ERROR(system.EnableWal("g", wal_path, wopts));
  GS_ASSIGN_OR_RETURN(const PropertyGraph* g, system.GetGraph("g"));
  const int wcol = g->FindWeightColumn("w");
  GS_RETURN_IF_ERROR(system.CreateCollection(
      "c", "g", {"w4", "w8", "w12", "all"}, MakePredicates(*g, wcol)));
  analytics::Wcc wcc;
  GS_RETURN_IF_ERROR(system.StartLiveComputation("live", wcc, "c"));

  for (uint64_t i = 0; i < n_batches; ++i) {
    GS_ASSIGN_OR_RETURN(uint64_t epoch, system.GraphEpoch("g"));
    GS_RETURN_IF_ERROR(system.ApplyMutations("g", MakeBatch(*g, epoch)));
    std::printf("batch %llu applied epoch=%llu\n",
                static_cast<unsigned long long>(i),
                static_cast<unsigned long long>(epoch + 1));
    std::fflush(stdout);
    if (pause_ms > 0) ::usleep(pause_ms * 1000);
  }
  return Status::Ok();
}

Status RunVerify(const std::string& wal_path, const std::string& out_path) {
  Graphsurge system;
  GS_RETURN_IF_ERROR(SetUpSystem(&system, wal_path));
  return DumpState(&system, out_path);
}

Status RunReference(uint64_t epochs, const std::string& out_path) {
  Graphsurge system;
  GS_RETURN_IF_ERROR(SetUpSystem(&system, /*wal_path=*/""));
  GS_ASSIGN_OR_RETURN(const PropertyGraph* g, system.GetGraph("g"));
  for (uint64_t e = 0; e < epochs; ++e) {
    GS_RETURN_IF_ERROR(system.ApplyMutations("g", MakeBatch(*g, e)));
  }
  return DumpState(&system, out_path);
}

int Main(int argc, char** argv) {
  std::string wal_path;
  std::string out_path;
  uint64_t ingest = 0;
  bool verify = false;
  uint64_t reference = 0;
  bool has_reference = false;
  uint64_t pause_ms = 0;
  uint32_t sync_every = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--wal") {
      wal_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--ingest") {
      ingest = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--reference") {
      reference = std::strtoull(next(), nullptr, 10);
      has_reference = true;
    } else if (arg == "--pause-ms") {
      pause_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--sync-every") {
      sync_every = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  Status status;
  if (ingest > 0) {
    status = RunIngest(wal_path, ingest, pause_ms, sync_every);
  } else if (verify) {
    status = RunVerify(wal_path, out_path);
  } else if (has_reference) {
    status = RunReference(reference, out_path);
  } else {
    std::fprintf(stderr,
                 "usage: wal_crash_tool --ingest N --wal PATH [--pause-ms M] "
                 "[--sync-every K]\n"
                 "       wal_crash_tool --verify --wal PATH --out FILE\n"
                 "       wal_crash_tool --reference E --out FILE\n");
    return 2;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) { return gs::Main(argc, argv); }
