#include "testing/minimize.h"

#include <algorithm>
#include <string>
#include <vector>

#include "testing/oracle.h"

namespace gs::testing {

namespace {

/// Re-establishes internal consistency after a structural shrink: node
/// count covers every endpoint, algorithm sources stay in range.
void Normalize(FuzzCase* c) {
  uint64_t max_endpoint = 0;
  for (const FuzzEdge& e : c->edges) {
    max_endpoint = std::max({max_endpoint, e.src, e.dst});
  }
  if (c->num_nodes < max_endpoint + 1) c->num_nodes = max_endpoint + 1;
  if (c->num_nodes == 0) c->num_nodes = 1;
  if ((c->program.algo == Algo::kBfs ||
       c->program.algo == Algo::kBellmanFord) &&
      static_cast<uint64_t>(c->program.param) >= c->num_nodes) {
    c->program.param =
        static_cast<int64_t>(c->program.param % c->num_nodes);
  }
}

class Shrinker {
 public:
  Shrinker(FuzzCase best, size_t budget)
      : best_(std::move(best)), budget_(budget) {}

  /// True iff the candidate still fails the oracle (and budget remains).
  bool StillFails(FuzzCase candidate) {
    if (spent_ >= budget_) return false;
    ++spent_;
    Normalize(&candidate);
    std::string log;
    if (RunOracle(candidate, &log).ok()) return false;
    best_ = std::move(candidate);
    return true;
  }

  /// One full greedy pass; true if anything shrank.
  bool Pass() {
    bool progress = false;

    // Drop whole views (keep at least one).
    for (size_t v = 0; best_.predicates.size() > 1 &&
                       v < best_.predicates.size();) {
      FuzzCase candidate = best_;
      candidate.predicates.erase(candidate.predicates.begin() + v);
      if (StillFails(std::move(candidate))) {
        progress = true;  // best_ updated; retry same index
      } else {
        ++v;
      }
    }

    // ddmin over edges: try removing chunks, halving granularity.
    for (size_t chunk = std::max<size_t>(best_.edges.size() / 2, 1);
         chunk >= 1 && !best_.edges.empty(); chunk /= 2) {
      bool removed_any = false;
      for (size_t start = 0; start < best_.edges.size();) {
        FuzzCase candidate = best_;
        size_t end = std::min(start + chunk, candidate.edges.size());
        candidate.edges.erase(candidate.edges.begin() + start,
                              candidate.edges.begin() + end);
        if (StillFails(std::move(candidate))) {
          progress = removed_any = true;  // retry same offset
        } else {
          start += chunk;
        }
      }
      if (chunk == 1 && !removed_any) break;
    }

    // Shrink the node count to just cover the surviving endpoints.
    {
      uint64_t max_endpoint = 0;
      for (const FuzzEdge& e : best_.edges) {
        max_endpoint = std::max({max_endpoint, e.src, e.dst});
      }
      if (best_.num_nodes > max_endpoint + 1) {
        FuzzCase candidate = best_;
        candidate.num_nodes = max_endpoint + 1;
        progress |= StillFails(std::move(candidate));
      }
    }

    // Truncate random programs: try each proper prefix as the whole
    // program (prefixes are closed under the child-precedes-parent rule).
    if (best_.program.algo == Algo::kRandom) {
      for (size_t k = 1; k < best_.program.ops.size();) {
        FuzzCase candidate = best_;
        candidate.program.ops.resize(k);
        if (StillFails(std::move(candidate))) {
          progress = true;
          k = 1;  // best_ shrank; restart prefixes
        } else {
          ++k;
        }
      }
    }

    // Drop whole mutation epochs, then single mutations. Raw mutations
    // resolve modulo the live graph, so no normalization is needed (and an
    // emptied epoch stays a legal empty batch).
    for (size_t e = 0; e < best_.mutation_epochs.size();) {
      FuzzCase candidate = best_;
      candidate.mutation_epochs.erase(candidate.mutation_epochs.begin() + e);
      if (StillFails(std::move(candidate))) {
        progress = true;
      } else {
        ++e;
      }
    }
    for (size_t e = 0; e < best_.mutation_epochs.size(); ++e) {
      for (size_t m = 0; m < best_.mutation_epochs[e].size();) {
        FuzzCase candidate = best_;
        candidate.mutation_epochs[e].erase(
            candidate.mutation_epochs[e].begin() + m);
        if (StillFails(std::move(candidate))) {
          progress = true;
        } else {
          ++m;
        }
      }
    }

    // Clear schedule knobs that turn out to be irrelevant to the failure.
    for (int knob = 0; knob < 4; ++knob) {
      FuzzCase candidate = best_;
      switch (knob) {
        case 0:
          if (candidate.compaction_period == 0) continue;
          candidate.compaction_period = 0;
          break;
        case 1:
          if (candidate.tail_seal_threshold == 0) continue;
          candidate.tail_seal_threshold = 0;
          break;
        case 2:
          if (candidate.fail_after_events == 0) continue;
          candidate.fail_after_events = 0;
          break;
        default:
          if (!candidate.use_ordering) continue;
          candidate.use_ordering = false;
          break;
      }
      progress |= StillFails(std::move(candidate));
    }

    return progress;
  }

  FuzzCase Run() {
    while (Pass() && spent_ < budget_) {
    }
    Normalize(&best_);
    return best_;
  }

 private:
  FuzzCase best_;
  size_t budget_;
  size_t spent_ = 0;
};

}  // namespace

FuzzCase Minimize(const FuzzCase& input, size_t budget) {
  return Shrinker(input, budget).Run();
}

}  // namespace gs::testing
