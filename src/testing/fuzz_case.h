// FuzzCase: the complete, self-contained description of one differential
// fuzzing run — input graph, view collection predicates, the computation to
// run, and every schedule/fault knob. A case fully determines the run:
// serializing and re-parsing it reproduces the identical execution
// (including the perturbed schedules, which derive from schedule_seed via
// pure mixing — see differential/fuzz_hooks.h).
#ifndef GRAPHSURGE_TESTING_FUZZ_CASE_H_
#define GRAPHSURGE_TESTING_FUZZ_CASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace gs::testing {

/// One generated edge. `w` and `kind` become the edge properties the view
/// predicates filter on (`w` doubles as the Bellman-Ford weight).
struct FuzzEdge {
  uint64_t src = 0;
  uint64_t dst = 0;
  int64_t w = 1;     // weight property, non-negative (termination)
  int64_t kind = 0;  // categorical property in [0, 3]

  friend bool operator==(const FuzzEdge&, const FuzzEdge&) = default;
};

/// The computation a case runs: one of the paper's named algorithms, or a
/// random operator DAG drawn from the engine's operator library.
enum class Algo : int {
  kWcc = 0,
  kBfs = 1,
  kBellmanFord = 2,
  kPageRank = 3,
  kRandom = 4,
};

/// One node of a random operator DAG. Children are indices into the ops
/// vector and always precede the node (the DAG is stored topologically);
/// the last node is the program root. `a`/`b` parameterize the operator
/// (map offsets, filter thresholds, iterate increments).
struct OpNode {
  enum class Kind : int {
    kBaseSrcDst = 0,    // edges -> (src, dst)
    kBaseDstWeight = 1, // edges -> (dst, weight)
    kMap = 2,
    kFilter = 3,
    kJoin = 4,
    kReduceMin = 5,
    kReduceMax = 6,
    kCount = 7,
    kDistinct = 8,
    kConcatNegate = 9,   // x + (-filter(x)): exercises negative diffs
    kIterateMinProp = 10 // converging min-label propagation over the edges
  };
  Kind kind = Kind::kBaseSrcDst;
  int64_t a = 0;
  int64_t b = 0;
  int child0 = -1;
  int child1 = -1;
};

struct ProgramSpec {
  Algo algo = Algo::kWcc;
  /// BFS / Bellman-Ford source vertex, or PageRank iteration count.
  int64_t param = 0;
  /// Random-DAG nodes (only for Algo::kRandom); last entry is the root.
  std::vector<OpNode> ops;
};

/// One raw streaming mutation for the mutate oracle mode. Deliberately
/// untyped: `kind` selects the graph/mutation.h kind and `a`/`b`/`c` are
/// resolved against the *current* graph state (modulo node/edge counts,
/// infeasible mutations skipped) by ResolveFuzzBatch — so shrinking edges
/// or nodes never invalidates a mutation line.
struct FuzzMutation {
  int64_t kind = 0;  // 0..5, mirrors gs::MutationKind
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;

  friend bool operator==(const FuzzMutation&, const FuzzMutation&) = default;
};

/// Everything needed to reproduce one fuzz run bit-for-bit.
struct FuzzCase {
  uint64_t case_seed = 0;

  // Input graph.
  uint64_t num_nodes = 1;
  std::vector<FuzzEdge> edges;

  // View collection: GVDL predicate source per view, in definition order.
  std::vector<std::string> predicates;
  bool use_ordering = false;

  // Computation.
  ProgramSpec program;

  // Streaming mutations: one inner vector per graph-update epoch, applied
  // in order by the mutate oracle mode (empty → mode skipped).
  std::vector<std::vector<FuzzMutation>> mutation_epochs;

  // Execution/schedule knobs (see differential/fuzz_hooks.h).
  uint64_t workers = 2;             // sharded oracle worker count
  uint64_t schedule_seed = 0;       // seeds every hook decision
  uint64_t compaction_period = 0;   // injected CompactTo every Nth insert
  uint64_t tail_seal_threshold = 0; // trace tail override (0 = default)
  uint64_t drop_insert_at = 0;      // hidden --inject-bug lost-insert
  uint64_t fail_after_events = 0;   // injected mid-run failure budget

  /// Line-oriented text form, stable across runs (replayable artifact).
  std::string Serialize() const;
  static StatusOr<FuzzCase> Parse(const std::string& text);

  /// A standalone C++ reproducer source embedding the serialized case;
  /// written next to the .case artifact when a run fails.
  std::string ReproSource() const;
};

}  // namespace gs::testing

#endif  // GRAPHSURGE_TESTING_FUZZ_CASE_H_
