// The fuzz campaign driver behind the `fuzz_differential` binary: generates
// cases from a seed, runs each through the oracle, and on failure minimizes
// the case and writes replayable artifacts (repro_<seed>.case plus a
// standalone repro_<seed>.cc) alongside a flight-recorder crash dump.
//
// All output written to the stream is a pure function of the options — no
// timing, no paths of the machine it ran on — so two invocations with the
// same options produce byte-identical logs (the determinism the smoke test
// asserts).
#ifndef GRAPHSURGE_TESTING_FUZZ_DRIVER_H_
#define GRAPHSURGE_TESTING_FUZZ_DRIVER_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace gs::testing {

struct FuzzOptions {
  uint64_t seed = 1;
  uint64_t runs = 100;
  uint64_t max_nodes = 24;
  /// Every Nth case additionally runs the injected-failure mode (0 = off).
  uint64_t fault_every = 5;
  /// Hidden: plant a lost-insert bug (fuzz_hooks.h drop_insert_at) in the
  /// first case; the campaign must catch, minimize, and emit it.
  bool inject_bug = false;
  /// Replay a previously written .case file instead of generating cases.
  std::string replay_path;
  /// Print the malformed-predicate corpus (tests/gvdl_corpus/) and exit.
  bool emit_gvdl_corpus = false;
  /// Directory for repro_* artifacts.
  std::string out_dir = ".";
  /// Stop the campaign after this many failing cases.
  uint64_t max_failures = 3;
};

/// Runs the campaign (or replay / corpus emission). Returns the process
/// exit code: 0 = all passed, 1 = failures found, 2 = usage/setup error.
int RunFuzz(const FuzzOptions& options, std::ostream& out);

}  // namespace gs::testing

#endif  // GRAPHSURGE_TESTING_FUZZ_DRIVER_H_
