// The differential fuzzer's execution-mode oracle. Every case runs the
// same computation over the same view collection through independent
// execution paths:
//
//   ref              serial, unarranged, no hooks — the golden run
//   serial-scrambled serial, unarranged, full schedule fuzz (seq + op_order
//                    tie scrambling, injected compactions, tail-seal 1)
//   serial-arranged  serial, shared arrangements, seq-only scrambling
//                    (op_order ties are load-bearing for arrangements)
//   sharded          multi-worker at the case's W, exchange-delivery
//                    shuffling on top of seq scrambling
//   scratch          per-view from-scratch strategy (no differential
//                    sharing at all)
//   reference        sequential non-dataflow implementations
//                    (algorithms/reference.h), per view — named algorithms
//                    only
//   fault            optional: the injected mid-run failure, which must
//                    surface as a clean Status, leave the memory gauges at
//                    zero, and not affect a subsequent clean run
//
// All modes must produce identical per-view results; any divergence is a
// bug in the engine (or an injected one). Log lines written to *log are a
// pure function of the case and the results — no timing, no pointers — so
// two invocations on the same case produce byte-identical logs.
#ifndef GRAPHSURGE_TESTING_ORACLE_H_
#define GRAPHSURGE_TESTING_ORACLE_H_

#include <cstdint>
#include <string>

#include "algorithms/reference.h"
#include "common/status.h"
#include "testing/fuzz_case.h"

namespace gs::testing {

/// Runs the case through every oracle mode. Ok() iff all modes agree and
/// every post-run invariant holds. Deterministic log lines are appended to
/// *log (never null).
Status RunOracle(const FuzzCase& c, std::string* log);

/// Ok() iff the arrangement memory gauges (gs_arrangement_bytes,
/// gs_arrangement_batches) read zero — i.e. no engine leaked accounting.
/// Only meaningful while no dataflow engines are alive.
Status CheckArrangementGaugesZero();

/// Order-independent content hash of a result map (for log lines).
uint64_t HashResults(const analytics::ResultMap& results);

}  // namespace gs::testing

#endif  // GRAPHSURGE_TESTING_ORACLE_H_
