// Seed-driven generators for the differential fuzzer: random property
// graphs (power-law degrees, self-loops, multi-edges, isolated nodes),
// random GVDL view collections over them (including guaranteed-empty views
// and disjoint consecutive views), and deliberately malformed GVDL
// predicate strings for parser error-recovery testing.
#ifndef GRAPHSURGE_TESTING_GENERATORS_H_
#define GRAPHSURGE_TESTING_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/mutation.h"
#include "gvdl/ast.h"
#include "testing/fuzz_case.h"

namespace gs::testing {

/// Generates a complete fuzz case from a seed: graph, predicates, program,
/// and schedule knobs. Pure function of (case_seed, max_nodes).
FuzzCase GenerateCase(uint64_t case_seed, uint64_t max_nodes);

/// Materializes the case's property graph. Node properties: `group` (int,
/// id % 5) and `hub` (bool, id % 3 == 0). Edge properties: `w` (int,
/// doubles as the weight column), `kind` (int), `tag` (string).
StatusOr<PropertyGraph> BuildGraph(const FuzzCase& c);

/// The case's view collection definition. Every predicate in the case is
/// valid GVDL by construction; this parses them into the AST form the
/// materializer consumes.
StatusOr<gvdl::ViewCollectionDef> BuildCollectionDef(const FuzzCase& c);

/// Resolves one epoch's raw fuzz mutations into a valid MutationBatch
/// against the *current* graph state: targets are taken modulo the node /
/// edge counts, property rows/values follow the BuildGraph schema, and any
/// mutation that cannot be made valid (dead target, dead endpoint, empty
/// graph) is skipped. Pure function of (graph state, raw) — the mutate
/// oracle's incremental and reload paths resolve identical batches.
MutationBatch ResolveFuzzBatch(const PropertyGraph& graph,
                               const std::vector<FuzzMutation>& raw);

/// Generates `count` malformed predicate strings by mutating valid ones
/// (truncation, unbalanced parens, broken quotes, trailing operators, junk
/// bytes, pathological nesting). Every returned string is verified to be
/// rejected by gvdl::ParsePredicate — this is the corpus generator behind
/// tests/gvdl_corpus/.
std::vector<std::string> GenerateMalformedPredicates(uint64_t seed,
                                                     size_t count);

}  // namespace gs::testing

#endif  // GRAPHSURGE_TESTING_GENERATORS_H_
