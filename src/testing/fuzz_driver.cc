#include "testing/fuzz_driver.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/crash_dump.h"
#include "differential/fuzz_hooks.h"
#include "testing/generators.h"
#include "testing/minimize.h"
#include "testing/oracle.h"

namespace gs::testing {

namespace fuzz = ::gs::differential::fuzz;

namespace {

/// The planted lost-insert bug (--inject-bug): a fixed ring-with-chords WCC
/// case whose Nth trace insert is silently dropped. The drop point is
/// searched deterministically so the corruption is guaranteed to be
/// output-visible (a dropped duplicate would be silently absorbed).
FuzzCase InjectBugCase(uint64_t seed) {
  FuzzCase c;
  c.case_seed = fuzz::Mix(seed ^ 0xb06b06ull);
  c.num_nodes = 12;
  for (uint64_t i = 0; i < 12; ++i) {
    c.edges.push_back({i, (i + 1) % 12, 1, static_cast<int64_t>(i % 4)});
    c.edges.push_back(
        {i, (i * 5 + 3) % 12, 2, static_cast<int64_t>((i + 1) % 4)});
  }
  c.predicates = {"w >= 0", "kind != 3"};
  c.program.algo = Algo::kWcc;
  c.workers = 2;
  c.schedule_seed = fuzz::Mix(c.case_seed ^ 0x5c5c5c5cull);
  // The reduce's iteration-major mirror absorbs drops that land after a
  // key's state was built (deltas reach it from the batch, not the trace),
  // so early drop points can be benign — search a wide range.
  for (uint64_t drop = 1; drop <= 512; ++drop) {
    c.drop_insert_at = drop;
    std::string scratch;
    if (!RunOracle(c, &scratch).ok()) break;
  }
  return c;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

/// Minimizes a failing case and writes the replayable artifacts. Log lines
/// mention artifact file names only (never directories), keeping the
/// campaign log machine-independent.
void HandleFailure(const FuzzCase& failing, const Status& status,
                   const FuzzOptions& options, std::ostream& out) {
  out << "FAIL case " << failing.case_seed << ": " << status.ToString()
      << "\n";
  FuzzCase minimal = Minimize(failing);
  std::string check_log;
  Status minimal_status = RunOracle(minimal, &check_log);
  out << "minimized case " << failing.case_seed << ": nodes="
      << minimal.num_nodes << " edges=" << minimal.edges.size()
      << " views=" << minimal.predicates.size() << " ("
      << minimal_status.ToString() << ")\n";
  const std::string stem =
      options.out_dir + "/repro_" + std::to_string(failing.case_seed);
  if (WriteFile(stem + ".case", minimal.Serialize()) &&
      WriteFile(stem + ".cc", minimal.ReproSource())) {
    out << "artifacts: repro_" << failing.case_seed << ".case repro_"
        << failing.case_seed << ".cc\n";
  } else {
    out << "artifacts: write failed\n";
  }
  DumpFlightRecorder("fuzz oracle failure");
}

}  // namespace

int RunFuzz(const FuzzOptions& options, std::ostream& out) {
  if (options.emit_gvdl_corpus) {
    for (const std::string& p :
         GenerateMalformedPredicates(options.seed, 50)) {
      out << p << "\n";
    }
    return 0;
  }

  if (!options.replay_path.empty()) {
    std::ifstream in(options.replay_path);
    if (!in) {
      out << "cannot open replay file: " << options.replay_path << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto parsed = FuzzCase::Parse(buf.str());
    if (!parsed.ok()) {
      out << "bad case file: " << parsed.status().ToString() << "\n";
      return 2;
    }
    std::string log;
    Status status = RunOracle(parsed.value(), &log);
    out << log;
    if (!status.ok()) {
      out << "FAIL: " << status.ToString() << "\n";
      return 1;
    }
    out << "PASS\n";
    return 0;
  }

  uint64_t failures = 0;
  for (uint64_t i = 0; i < options.runs; ++i) {
    FuzzCase c;
    if (options.inject_bug && i == 0) {
      c = InjectBugCase(options.seed);
    } else {
      const uint64_t case_seed = fuzz::Mix(options.seed ^ (i + 1));
      c = GenerateCase(case_seed, options.max_nodes);
      if (options.fault_every != 0 &&
          i % options.fault_every == options.fault_every - 1) {
        // Small budgets: generated cases are tiny, so per-version event
        // counts are too. Some cases still finish under the budget —
        // exercising both the triggered and not-triggered paths.
        c.fail_after_events = 1 + case_seed % 8;
      }
    }
    std::string log;
    Status status = RunOracle(c, &log);
    out << log;
    if (!status.ok()) {
      HandleFailure(c, status, options, out);
      if (++failures >= options.max_failures) {
        out << "stopping after " << failures << " failures\n";
        break;
      }
    }
  }
  out << "fuzz: seed=" << options.seed << " runs=" << options.runs
      << " failures=" << failures << "\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace gs::testing
