#include "ordering/tsp.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/bitset.h"
#include "common/logging.h"

namespace gs::ordering {

uint64_t DistanceMatrix::TourCost(const std::vector<size_t>& tour) const {
  if (tour.size() < 2) return 0;
  uint64_t total = 0;
  for (size_t i = 0; i < tour.size(); ++i) {
    total += at(tour[i], tour[(i + 1) % tour.size()]);
  }
  return total;
}

bool DistanceMatrix::SatisfiesTriangleInequality() const {
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = i + 1; j < n_; ++j) {
      for (size_t k = 0; k < n_; ++k) {
        if (at(i, k) + at(k, j) < at(i, j)) return false;
      }
    }
  }
  return true;
}

std::vector<std::pair<size_t, size_t>> MinimumSpanningTree(
    const DistanceMatrix& d) {
  size_t n = d.size();
  std::vector<std::pair<size_t, size_t>> edges;
  if (n < 2) return edges;
  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> best(n, kInf);
  std::vector<size_t> parent(n, 0);
  Bitset in_tree(n);
  best[0] = 0;
  for (size_t round = 0; round < n; ++round) {
    size_t v = SIZE_MAX;
    for (size_t i = 0; i < n; ++i) {
      if (!in_tree.Test(i) && (v == SIZE_MAX || best[i] < best[v])) v = i;
    }
    in_tree.Set(v);
    if (v != 0) edges.emplace_back(parent[v], v);
    for (size_t w = 0; w < n; ++w) {
      if (!in_tree.Test(w) && d.at(v, w) < best[w]) {
        best[w] = d.at(v, w);
        parent[w] = v;
      }
    }
  }
  return edges;
}

std::vector<std::pair<size_t, size_t>> GreedyPerfectMatching(
    const DistanceMatrix& d, const std::vector<size_t>& vertices) {
  GS_CHECK(vertices.size() % 2 == 0)
      << "perfect matching needs an even vertex count";
  // Sort all candidate pairs by weight and take greedily.
  struct Pair {
    uint64_t w;
    size_t a, b;
  };
  std::vector<Pair> candidates;
  candidates.reserve(vertices.size() * vertices.size() / 2);
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (size_t j = i + 1; j < vertices.size(); ++j) {
      candidates.push_back(
          {d.at(vertices[i], vertices[j]), vertices[i], vertices[j]});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Pair& x, const Pair& y) { return x.w < y.w; });
  Bitset used(d.size());
  std::vector<std::pair<size_t, size_t>> matching;
  for (const Pair& p : candidates) {
    if (used.Test(p.a) || used.Test(p.b)) continue;
    used.Set(p.a);
    used.Set(p.b);
    matching.emplace_back(p.a, p.b);
  }
  // 2-swap improvement: for pairs (a,b),(c,e) try (a,c),(b,e) and
  // (a,e),(b,c); repeat until no improvement.
  bool improved = true;
  while (improved) {
    improved = false;
    for (size_t i = 0; i < matching.size(); ++i) {
      for (size_t j = i + 1; j < matching.size(); ++j) {
        auto [a, b] = matching[i];
        auto [c, e] = matching[j];
        uint64_t current = d.at(a, b) + d.at(c, e);
        uint64_t swap1 = d.at(a, c) + d.at(b, e);
        uint64_t swap2 = d.at(a, e) + d.at(b, c);
        if (swap1 < current && swap1 <= swap2) {
          matching[i] = {a, c};
          matching[j] = {b, e};
          improved = true;
        } else if (swap2 < current) {
          matching[i] = {a, e};
          matching[j] = {b, c};
          improved = true;
        }
      }
    }
  }
  return matching;
}

std::vector<size_t> EulerCircuit(
    size_t n, const std::vector<std::pair<size_t, size_t>>& edges) {
  // Adjacency as indices into the edge list, with a used flag per edge.
  std::vector<std::vector<size_t>> incident(n);
  for (size_t i = 0; i < edges.size(); ++i) {
    incident[edges[i].first].push_back(i);
    incident[edges[i].second].push_back(i);
  }
  Bitset used(edges.size());
  std::vector<size_t> next_index(n, 0);
  std::vector<size_t> stack = {edges.empty() ? 0 : edges[0].first};
  std::vector<size_t> circuit;
  while (!stack.empty()) {
    size_t v = stack.back();
    bool advanced = false;
    while (next_index[v] < incident[v].size()) {
      size_t ei = incident[v][next_index[v]++];
      if (used.Test(ei)) continue;
      used.Set(ei);
      size_t w = edges[ei].first == v ? edges[ei].second : edges[ei].first;
      stack.push_back(w);
      advanced = true;
      break;
    }
    if (!advanced) {
      circuit.push_back(v);
      stack.pop_back();
    }
  }
  std::reverse(circuit.begin(), circuit.end());
  if (!circuit.empty()) circuit.pop_back();  // drop the repeated start
  return circuit;
}

std::vector<size_t> ChristofidesTour(const DistanceMatrix& d) {
  size_t n = d.size();
  if (n == 0) return {};
  if (n == 1) return {0};
  if (n == 2) return {0, 1};

  auto mst = MinimumSpanningTree(d);
  std::vector<size_t> degree(n, 0);
  for (auto [a, b] : mst) {
    degree[a]++;
    degree[b]++;
  }
  std::vector<size_t> odd;
  for (size_t v = 0; v < n; ++v) {
    if (degree[v] % 2 == 1) odd.push_back(v);
  }
  auto matching = GreedyPerfectMatching(d, odd);

  std::vector<std::pair<size_t, size_t>> multigraph = mst;
  multigraph.insert(multigraph.end(), matching.begin(), matching.end());
  std::vector<size_t> circuit = EulerCircuit(n, multigraph);

  // Shortcut repeated vertices (valid under the triangle inequality).
  Bitset seen(n);
  std::vector<size_t> tour;
  tour.reserve(n);
  for (size_t v : circuit) {
    if (!seen.Test(v)) {
      seen.Set(v);
      tour.push_back(v);
    }
  }
  GS_CHECK(tour.size() == n) << "Euler circuit did not cover all vertices";
  return tour;
}

std::vector<size_t> HeldKarpOptimalTour(const DistanceMatrix& d) {
  size_t n = d.size();
  GS_CHECK(n >= 1 && n <= 20) << "Held-Karp limited to small instances";
  if (n == 1) return {0};
  size_t full = size_t{1} << (n - 1);  // subsets of vertices 1..n-1
  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max() / 4;
  // dp[mask][j]: min cost path 0 → ... → j+1 visiting exactly mask.
  std::vector<std::vector<uint64_t>> dp(full,
                                        std::vector<uint64_t>(n - 1, kInf));
  std::vector<std::vector<uint8_t>> parent(
      full, std::vector<uint8_t>(n - 1, 0xFF));
  for (size_t j = 0; j < n - 1; ++j) {
    dp[size_t{1} << j][j] = d.at(0, j + 1);
  }
  for (size_t mask = 1; mask < full; ++mask) {
    for (size_t j = 0; j < n - 1; ++j) {
      if (!(mask & (size_t{1} << j)) || dp[mask][j] >= kInf) continue;
      for (size_t k = 0; k < n - 1; ++k) {
        if (mask & (size_t{1} << k)) continue;
        size_t next = mask | (size_t{1} << k);
        uint64_t cost = dp[mask][j] + d.at(j + 1, k + 1);
        if (cost < dp[next][k]) {
          dp[next][k] = cost;
          parent[next][k] = static_cast<uint8_t>(j);
        }
      }
    }
  }
  uint64_t best = kInf;
  size_t best_j = 0;
  for (size_t j = 0; j < n - 1; ++j) {
    uint64_t cost = dp[full - 1][j] + d.at(j + 1, 0);
    if (cost < best) {
      best = cost;
      best_j = j;
    }
  }
  std::vector<size_t> tour = {0};
  std::vector<size_t> rev;
  size_t mask = full - 1, j = best_j;
  while (j != 0xFF) {
    rev.push_back(j + 1);
    uint8_t p = parent[mask][j];
    mask ^= size_t{1} << j;
    if (p == 0xFF) break;
    j = p;
  }
  std::reverse(rev.begin(), rev.end());
  tour.insert(tour.end(), rev.begin(), rev.end());
  return tour;
}

}  // namespace gs::ordering
