// TSP machinery for the collection ordering optimizer (paper §4):
// Christofides-style tour construction — MST + perfect matching on
// odd-degree vertices + Euler circuit + shortcutting — over the Hamming
// distance clique, plus an exact Held–Karp solver used to validate the
// heuristic on small instances.
//
// Note on the approximation bound: Christofides' 1.5 factor requires a
// minimum-weight perfect matching (blossom algorithm). We use greedy
// matching followed by a 2-swap improvement pass, which is the standard
// practical compromise; DESIGN.md §4.1 records this deviation and the
// tests compare against Held–Karp optima empirically.
#ifndef GRAPHSURGE_ORDERING_TSP_H_
#define GRAPHSURGE_ORDERING_TSP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gs::ordering {

/// Dense symmetric distance matrix.
class DistanceMatrix {
 public:
  explicit DistanceMatrix(size_t n) : n_(n), d_(n * n, 0) {}

  size_t size() const { return n_; }
  uint64_t at(size_t i, size_t j) const { return d_[i * n_ + j]; }
  void set(size_t i, size_t j, uint64_t v) {
    d_[i * n_ + j] = v;
    d_[j * n_ + i] = v;
  }

  /// Total weight of a closed tour visiting `tour` in order.
  uint64_t TourCost(const std::vector<size_t>& tour) const;

  /// True if d satisfies the triangle inequality (Hamming distances always
  /// do; checked in tests and debug builds).
  bool SatisfiesTriangleInequality() const;

 private:
  size_t n_;
  std::vector<uint64_t> d_;
};

/// Prim's minimum spanning tree; returns edge list (parent, child).
std::vector<std::pair<size_t, size_t>> MinimumSpanningTree(
    const DistanceMatrix& d);

/// Greedy minimum-weight perfect matching on `vertices` (even count) with
/// a 2-swap improvement pass. Returns matched pairs.
std::vector<std::pair<size_t, size_t>> GreedyPerfectMatching(
    const DistanceMatrix& d, const std::vector<size_t>& vertices);

/// Hierholzer's algorithm: Euler circuit of a connected multigraph given
/// as an edge list over [0, n). Every vertex must have even degree.
std::vector<size_t> EulerCircuit(
    size_t n, const std::vector<std::pair<size_t, size_t>>& edges);

/// Christofides-style heuristic tour over all vertices of `d`.
std::vector<size_t> ChristofidesTour(const DistanceMatrix& d);

/// Exact TSP via Held–Karp dynamic programming; n must be ≤ 20 (tests use
/// ≤ 12). Returns the optimal closed tour starting at vertex 0.
std::vector<size_t> HeldKarpOptimalTour(const DistanceMatrix& d);

}  // namespace gs::ordering

#endif  // GRAPHSURGE_ORDERING_TSP_H_
