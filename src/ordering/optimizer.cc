#include "ordering/optimizer.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/timer.h"

namespace gs::ordering {

DistanceMatrix BuildPaddedDistanceMatrix(const views::EdgeBooleanMatrix& ebm,
                                         ThreadPool* pool) {
  size_t k = ebm.num_views();
  DistanceMatrix d(k + 1);
  // Column pairs (i, j), i < j, with vertex 0 = the zero column. Distances
  // from zero are column popcounts; the rest are XOR popcounts. Each (i, j)
  // cell is independent — parallelize over i.
  auto fill_row = [&](size_t i) {
    if (i == 0) {
      for (size_t j = 1; j <= k; ++j) {
        d.set(0, j, ebm.ColumnOnes(j - 1));
      }
      return;
    }
    for (size_t j = i + 1; j <= k; ++j) {
      d.set(i, j, ebm.HammingDistance(i - 1, j - 1));
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(k + 1, fill_row);
  } else {
    for (size_t i = 0; i <= k; ++i) fill_row(i);
  }
  return d;
}

OrderingResult OrderCollection(const views::EdgeBooleanMatrix& ebm,
                               ThreadPool* pool) {
  Timer timer;
  OrderingResult result;
  size_t k = ebm.num_views();
  if (k <= 1) {
    result.order = IdentityOrder(k);
    result.difference_count = ebm.DifferenceCount(result.order);
    result.identity_difference_count = result.difference_count;
    result.seconds = timer.Seconds();
    return result;
  }

  DistanceMatrix d = BuildPaddedDistanceMatrix(ebm, pool);
  std::vector<size_t> tour = ChristofidesTour(d);

  // Rotate the closed tour so the zero column comes first, then drop it;
  // the remaining path is the view order. Hamming is symmetric so both
  // directions of the path have equal tour cost, but ds() differs only by
  // which endpoint pays its full size first — evaluate both and keep the
  // cheaper.
  auto zero_pos = std::find(tour.begin(), tour.end(), size_t{0});
  GS_CHECK(zero_pos != tour.end());
  std::rotate(tour.begin(), zero_pos, tour.end());
  std::vector<size_t> forward(tour.begin() + 1, tour.end());
  for (size_t& v : forward) --v;  // clique vertex v+1 ↔ view v
  std::vector<size_t> backward(forward.rbegin(), forward.rend());

  uint64_t ds_forward = ebm.DifferenceCount(forward);
  uint64_t ds_backward = ebm.DifferenceCount(backward);
  if (ds_backward < ds_forward) {
    result.order = std::move(backward);
    result.difference_count = ds_backward;
  } else {
    result.order = std::move(forward);
    result.difference_count = ds_forward;
  }
  // The tour is a heuristic (greedy matching, DESIGN.md §4.1); never hand
  // back something worse than the user-given order.
  std::vector<size_t> identity = IdentityOrder(k);
  uint64_t ds_identity = ebm.DifferenceCount(identity);
  result.identity_difference_count = ds_identity;
  if (ds_identity < result.difference_count) {
    result.order = std::move(identity);
    result.difference_count = ds_identity;
  }
  result.seconds = timer.Seconds();
  return result;
}

std::vector<size_t> IdentityOrder(size_t num_views) {
  std::vector<size_t> order(num_views);
  std::iota(order.begin(), order.end(), size_t{0});
  return order;
}

}  // namespace gs::ordering
