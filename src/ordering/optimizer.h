// The collection ordering optimizer (paper §4, Algorithm 1): pads the EBM
// with a zero column, builds the (k+1)-clique of pairwise column Hamming
// distances (in parallel), runs the Christofides-style TSP heuristic, cuts
// the tour at the zero column, and returns the view order minimizing the
// total difference-set size ds(B, σ).
#ifndef GRAPHSURGE_ORDERING_OPTIMIZER_H_
#define GRAPHSURGE_ORDERING_OPTIMIZER_H_

#include <vector>

#include "common/thread_pool.h"
#include "ordering/tsp.h"
#include "views/ebm.h"

namespace gs::ordering {

struct OrderingResult {
  /// Permutation of view indices (order[i] = original column of position i).
  std::vector<size_t> order;
  /// ds(EBM, order) — total difference-set size under this order.
  uint64_t difference_count = 0;
  /// ds(EBM, identity) — the user-given order's cost, computed anyway as
  /// the optimizer's fallback floor. Kept so EXPLAIN can report the win
  /// without re-evaluating the matrix.
  uint64_t identity_difference_count = 0;
  /// Wall time spent ordering (the paper's CCT ordering overhead).
  double seconds = 0;
};

/// Builds the padded Hamming-distance clique of an EBM. Exposed for tests
/// and benches; vertex 0 is the zero column, vertex v+1 is view v.
DistanceMatrix BuildPaddedDistanceMatrix(const views::EdgeBooleanMatrix& ebm,
                                         ThreadPool* pool);

/// Runs the full collection ordering optimizer.
OrderingResult OrderCollection(const views::EdgeBooleanMatrix& ebm,
                               ThreadPool* pool);

/// The identity (user-given) order, for baselines.
std::vector<size_t> IdentityOrder(size_t num_views);

}  // namespace gs::ordering

#endif  // GRAPHSURGE_ORDERING_OPTIMIZER_H_
