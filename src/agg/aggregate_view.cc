#include "agg/aggregate_view.h"

#include <map>
#include <unordered_map>

#include "common/logging.h"
#include "gvdl/predicate.h"

namespace gs::agg {

namespace {

using gvdl::AggregateSpec;

// Running aggregate state for one (group, spec) cell.
struct Accumulator {
  int64_t count = 0;       // rows seen (for count(*) and avg)
  int64_t non_null = 0;    // non-null property values (for count(prop))
  int64_t int_sum = 0;
  double double_sum = 0;
  bool has_value = false;
  PropertyValue min_value;
  PropertyValue max_value;

  void Add(const PropertyValue& v) {
    ++count;
    if (v.is_null()) return;
    ++non_null;
    if (auto num = v.AsNumeric()) {
      double_sum += *num;
      if (v.type() == PropertyType::kInt) int_sum += v.AsInt();
    }
    if (!has_value) {
      min_value = v;
      max_value = v;
      has_value = true;
    } else {
      auto cmp_min = v.Compare(min_value);
      if (cmp_min && *cmp_min < 0) min_value = v;
      auto cmp_max = v.Compare(max_value);
      if (cmp_max && *cmp_max > 0) max_value = v;
    }
  }

  PropertyValue Result(AggregateSpec::Func func, PropertyType prop_type,
                       bool star) const {
    switch (func) {
      case AggregateSpec::Func::kCount:
        return PropertyValue(star ? count : non_null);
      case AggregateSpec::Func::kSum:
        if (prop_type == PropertyType::kInt) return PropertyValue(int_sum);
        return PropertyValue(double_sum);
      case AggregateSpec::Func::kMin:
        return has_value ? min_value : PropertyValue::Null();
      case AggregateSpec::Func::kMax:
        return has_value ? max_value : PropertyValue::Null();
      case AggregateSpec::Func::kAvg:
        if (non_null == 0) return PropertyValue::Null();
        return PropertyValue(double_sum / static_cast<double>(non_null));
    }
    return PropertyValue::Null();
  }
};

// Resolves the declared output column type of an aggregate.
StatusOr<PropertyType> AggregateOutputType(const AggregateSpec& spec,
                                           const PropertyTable& table) {
  switch (spec.func) {
    case AggregateSpec::Func::kCount:
      return PropertyType::kInt;
    case AggregateSpec::Func::kAvg:
      return PropertyType::kDouble;
    default: {
      GS_ASSIGN_OR_RETURN(size_t col, table.ColumnIndex(spec.property));
      return table.column(col).type();
    }
  }
}

Status CheckAggregable(const AggregateSpec& spec, const PropertyTable& table) {
  if (spec.property.empty()) {
    if (spec.func != AggregateSpec::Func::kCount) {
      return Status::InvalidArgument("aggregate requires a property");
    }
    return Status::Ok();
  }
  GS_ASSIGN_OR_RETURN(size_t col, table.ColumnIndex(spec.property));
  PropertyType t = table.column(col).type();
  if ((spec.func == AggregateSpec::Func::kSum ||
       spec.func == AggregateSpec::Func::kAvg) &&
      t != PropertyType::kInt && t != PropertyType::kDouble) {
    return Status::InvalidArgument("sum/avg require a numeric property: " +
                                   spec.property);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<AggregateView> ComputeAggregateView(const PropertyGraph& graph,
                                             const gvdl::AggregateViewDef& def,
                                             ThreadPool* pool) {
  for (const AggregateSpec& spec : def.node_aggregates) {
    GS_RETURN_IF_ERROR(CheckAggregable(spec, graph.node_properties()));
  }
  for (const AggregateSpec& spec : def.edge_aggregates) {
    GS_RETURN_IF_ERROR(CheckAggregable(spec, graph.edge_properties()));
  }

  AggregateView out;
  constexpr int64_t kUngrouped = -1;
  std::vector<int64_t> group_of(graph.num_nodes(), kUngrouped);
  std::vector<std::vector<PropertyValue>> group_keys;  // property grouping

  if (!def.group_by_properties.empty()) {
    // Group by the value combination of the listed node properties.
    std::vector<size_t> cols;
    for (const std::string& prop : def.group_by_properties) {
      GS_ASSIGN_OR_RETURN(size_t c, graph.node_properties().ColumnIndex(prop));
      cols.push_back(c);
    }
    std::map<std::string, int64_t> key_to_group;  // serialized key
    for (VertexId v = 0; v < graph.num_nodes(); ++v) {
      std::vector<PropertyValue> key;
      std::string serialized;
      for (size_t c : cols) {
        PropertyValue val = graph.node_properties().Get(v, c);
        serialized += val.ToString();
        serialized.push_back('\x1f');
        key.push_back(std::move(val));
      }
      auto [it, inserted] = key_to_group.try_emplace(
          serialized, static_cast<int64_t>(group_keys.size()));
      if (inserted) {
        group_keys.push_back(std::move(key));
        std::string label;
        for (size_t i = 0; i < cols.size(); ++i) {
          if (i) label += ", ";
          label += def.group_by_properties[i] + "=" +
                   group_keys.back()[i].ToString();
        }
        out.group_labels.push_back(std::move(label));
      }
      group_of[v] = it->second;
    }
  } else {
    // Predicate-defined groups: first matching predicate wins.
    std::vector<gvdl::CompiledNodePredicate> compiled;
    for (const gvdl::ExprPtr& p : def.group_by_predicates) {
      GS_ASSIGN_OR_RETURN(gvdl::CompiledNodePredicate c,
                          gvdl::CompiledNodePredicate::Compile(p, graph));
      compiled.push_back(std::move(c));
      out.group_labels.push_back(p->ToString());
    }
    for (VertexId v = 0; v < graph.num_nodes(); ++v) {
      for (size_t g = 0; g < compiled.size(); ++g) {
        if (compiled[g].Evaluate(v)) {
          group_of[v] = static_cast<int64_t>(g);
          break;
        }
      }
      if (group_of[v] == kUngrouped) ++out.ungrouped_nodes;
    }
  }

  size_t num_groups = out.group_labels.size();

  // --- Super-nodes ---------------------------------------------------------
  PropertyGraph& sg = out.graph;
  sg.AddNodes(num_groups);
  if (!def.group_by_properties.empty()) {
    for (size_t i = 0; i < def.group_by_properties.size(); ++i) {
      GS_ASSIGN_OR_RETURN(
          size_t c,
          graph.node_properties().ColumnIndex(def.group_by_properties[i]));
      GS_RETURN_IF_ERROR(sg.node_properties().AddColumn(
          def.group_by_properties[i],
          graph.node_properties().column(c).type()));
    }
  } else {
    GS_RETURN_IF_ERROR(
        sg.node_properties().AddColumn("group", PropertyType::kString));
  }
  for (const AggregateSpec& spec : def.node_aggregates) {
    GS_ASSIGN_OR_RETURN(PropertyType t,
                        AggregateOutputType(spec, graph.node_properties()));
    GS_RETURN_IF_ERROR(sg.node_properties().AddColumn(spec.output_name, t));
  }

  // Node aggregate accumulation.
  std::vector<std::vector<Accumulator>> node_acc(
      num_groups, std::vector<Accumulator>(def.node_aggregates.size()));
  for (VertexId v = 0; v < graph.num_nodes(); ++v) {
    if (group_of[v] == kUngrouped) continue;
    auto& accs = node_acc[group_of[v]];
    for (size_t a = 0; a < def.node_aggregates.size(); ++a) {
      const AggregateSpec& spec = def.node_aggregates[a];
      if (spec.property.empty()) {
        accs[a].Add(PropertyValue(int64_t{1}));
      } else {
        GS_ASSIGN_OR_RETURN(PropertyValue val,
                            graph.node_properties().GetByName(v, spec.property));
        accs[a].Add(val);
      }
    }
  }
  for (size_t g = 0; g < num_groups; ++g) {
    std::vector<PropertyValue> row;
    if (!def.group_by_properties.empty()) {
      for (const PropertyValue& key : group_keys[g]) row.push_back(key);
    } else {
      row.push_back(PropertyValue(out.group_labels[g]));
    }
    for (size_t a = 0; a < def.node_aggregates.size(); ++a) {
      const AggregateSpec& spec = def.node_aggregates[a];
      PropertyType prop_type = PropertyType::kInt;
      if (!spec.property.empty()) {
        GS_ASSIGN_OR_RETURN(size_t c,
                            graph.node_properties().ColumnIndex(spec.property));
        prop_type = graph.node_properties().column(c).type();
      }
      row.push_back(node_acc[g][a].Result(spec.func, prop_type,
                                          spec.property.empty()));
    }
    GS_RETURN_IF_ERROR(sg.node_properties().AppendRow(row));
  }

  // --- Super-edges ---------------------------------------------------------
  for (const AggregateSpec& spec : def.edge_aggregates) {
    GS_ASSIGN_OR_RETURN(PropertyType t,
                        AggregateOutputType(spec, graph.edge_properties()));
    GS_RETURN_IF_ERROR(sg.edge_properties().AddColumn(spec.output_name, t));
  }
  std::map<std::pair<int64_t, int64_t>, std::vector<Accumulator>> edge_acc;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    int64_t g1 = group_of[graph.edge(e).src];
    int64_t g2 = group_of[graph.edge(e).dst];
    if (g1 == kUngrouped || g2 == kUngrouped) continue;
    auto [it, inserted] = edge_acc.try_emplace(
        std::make_pair(g1, g2),
        std::vector<Accumulator>(std::max<size_t>(
            def.edge_aggregates.size(), 1)));
    for (size_t a = 0; a < def.edge_aggregates.size(); ++a) {
      const AggregateSpec& spec = def.edge_aggregates[a];
      if (spec.property.empty()) {
        it->second[a].Add(PropertyValue(int64_t{1}));
      } else {
        GS_ASSIGN_OR_RETURN(PropertyValue val,
                            graph.edge_properties().GetByName(e, spec.property));
        it->second[a].Add(val);
      }
    }
    if (def.edge_aggregates.empty()) it->second[0].count++;
  }
  for (const auto& [groups, accs] : edge_acc) {
    GS_RETURN_IF_ERROR(
        sg.AddEdge(static_cast<VertexId>(groups.first),
                   static_cast<VertexId>(groups.second))
            .status());
    if (!def.edge_aggregates.empty()) {
      std::vector<PropertyValue> row;
      for (size_t a = 0; a < def.edge_aggregates.size(); ++a) {
        const AggregateSpec& spec = def.edge_aggregates[a];
        PropertyType prop_type = PropertyType::kInt;
        if (!spec.property.empty()) {
          GS_ASSIGN_OR_RETURN(
              size_t c, graph.edge_properties().ColumnIndex(spec.property));
          prop_type = graph.edge_properties().column(c).type();
        }
        row.push_back(
            accs[a].Result(spec.func, prop_type, spec.property.empty()));
      }
      GS_RETURN_IF_ERROR(sg.edge_properties().AppendRow(row));
    }
  }
  return out;
}

}  // namespace gs::agg
