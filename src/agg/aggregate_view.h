// Aggregate (Graph OLAP) views, paper §6: group nodes into super-nodes —
// by property values or by explicit predicates — and aggregate edges
// between groups into super-edges, with count/sum/min/max/avg aggregate
// properties on both.
#ifndef GRAPHSURGE_AGG_AGGREGATE_VIEW_H_
#define GRAPHSURGE_AGG_AGGREGATE_VIEW_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/graph.h"
#include "gvdl/ast.h"

namespace gs::agg {

/// The materialized summary graph of an aggregate view. Super-nodes carry
/// the group-by key columns plus one column per node aggregate; super-edges
/// carry one column per edge aggregate. `group_labels[i]` is a printable
/// description of super-node i.
struct AggregateView {
  PropertyGraph graph;
  std::vector<std::string> group_labels;
  /// Nodes of the input graph that matched no group (predicate grouping
  /// only; such nodes and their edges are excluded, as in Graph OLAP).
  size_t ungrouped_nodes = 0;
};

/// Evaluates an aggregate view definition over `graph`.
StatusOr<AggregateView> ComputeAggregateView(const PropertyGraph& graph,
                                             const gvdl::AggregateViewDef& def,
                                             ThreadPool* pool);

}  // namespace gs::agg

#endif  // GRAPHSURGE_AGG_AGGREGATE_VIEW_H_
