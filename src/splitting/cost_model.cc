#include "splitting/cost_model.h"

#include <cmath>
#include <limits>

namespace gs::splitting {

void OnlineLinearModel::Observe(double x, double y) {
  ++n_;
  sum_x_ += x;
  sum_y_ += y;
  sum_xx_ += x * x;
  sum_xy_ += x * y;
}

double OnlineLinearModel::slope() const {
  double denom = static_cast<double>(n_) * sum_xx_ - sum_x_ * sum_x_;
  if (std::abs(denom) < 1e-12) return 0;
  return (static_cast<double>(n_) * sum_xy_ - sum_x_ * sum_y_) / denom;
}

double OnlineLinearModel::intercept() const {
  if (n_ == 0) return 0;
  return (sum_y_ - slope() * sum_x_) / static_cast<double>(n_);
}

double OnlineLinearModel::Predict(double x) const {
  if (n_ == 0) return std::numeric_limits<double>::infinity();
  if (n_ == 1) {
    // Proportional estimate through the single observation.
    if (sum_x_ <= 0) return sum_y_;
    return sum_y_ / sum_x_ * x;
  }
  double y = intercept() + slope() * x;
  // Runtimes are non-negative; a descending fit extrapolated far left/right
  // must not predict a negative cost.
  return y < 0 ? 0 : y;
}

}  // namespace gs::splitting
