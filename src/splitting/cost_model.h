// Online univariate linear cost models used by the adaptive collection
// splitting optimizer (paper §5): predicted_seconds = a + b * size, fit by
// least squares over all observations so far.
#ifndef GRAPHSURGE_SPLITTING_COST_MODEL_H_
#define GRAPHSURGE_SPLITTING_COST_MODEL_H_

#include <cstdint>
#include <cstddef>

namespace gs::splitting {

/// Incremental least-squares fit of y = a + b·x. With a single observation
/// the model degenerates to the proportional estimate y = (y1/x1)·x; with
/// none it predicts +infinity so the strategy seeding (scratch first, then
/// differential) always wins initially.
class OnlineLinearModel {
 public:
  void Observe(double x, double y);

  /// Predicted y at x; infinity when no observations exist.
  double Predict(double x) const;

  size_t num_observations() const { return n_; }

  /// Fitted coefficients (a, b); only meaningful with ≥ 2 observations.
  double intercept() const;
  double slope() const;

 private:
  size_t n_ = 0;
  double sum_x_ = 0, sum_y_ = 0, sum_xx_ = 0, sum_xy_ = 0;
};

}  // namespace gs::splitting

#endif  // GRAPHSURGE_SPLITTING_COST_MODEL_H_
