// The adaptive collection splitting optimizer (paper §5). It observes
// (|GV|, scratch seconds) and (|δC|, differential seconds) pairs at
// runtime, and for each chunk of ℓ views predicts both strategies' costs
// with two linear models, picking the cheaper. Splitting = running a view
// from scratch, which seeds a fresh differential computation with the full
// view (computation is still shared across the view's own loop
// iterations, per the paper).
#ifndef GRAPHSURGE_SPLITTING_ADAPTIVE_H_
#define GRAPHSURGE_SPLITTING_ADAPTIVE_H_

#include <cstdint>
#include <vector>

#include "splitting/cost_model.h"

namespace gs::splitting {

/// Fixed execution strategies plus the adaptive optimizer.
enum class Strategy {
  kDiffOnly,  // paper "diff-only": every view differential
  kScratch,   // paper "scratch": every view from scratch
  kAdaptive,  // paper "adaptive": runtime decisions per chunk of ℓ views
};

const char* StrategyName(Strategy s);

/// Both cost models' predictions for one chunk, captured when the decision
/// is made so EXPLAIN can show exactly the numbers the splitter compared.
struct ChunkPrediction {
  double scratch_seconds = 0;
  double diff_seconds = 0;
  /// False while a model still predicts infinity (not enough observations).
  bool models_ready = false;
};

/// Decision state for one collection run.
class AdaptiveSplitter {
 public:
  /// `chunk_size` is ℓ — decisions are made for ℓ views at a time, which
  /// also keeps DD's indexing fast per the paper (default 10).
  explicit AdaptiveSplitter(size_t chunk_size = 10)
      : chunk_size_(chunk_size) {}

  size_t chunk_size() const { return chunk_size_; }

  /// Bootstrapping per the paper: view 1 runs from scratch, view 2
  /// differentially; afterwards the models decide per chunk.
  /// `view_index` is 0-based.
  bool ShouldRunScratch(size_t view_index, uint64_t view_size,
                        uint64_t diff_size);

  /// Chunk-granular decision: called at the start of each chunk with the
  /// sizes of all views in it; the same choice applies to the whole chunk.
  /// When `prediction` is non-null it receives both models' cost estimates
  /// for the chunk.
  bool ChunkShouldRunScratch(const std::vector<uint64_t>& view_sizes,
                             const std::vector<uint64_t>& diff_sizes,
                             ChunkPrediction* prediction = nullptr);

  void RecordScratch(uint64_t view_size, double seconds) {
    scratch_model_.Observe(static_cast<double>(view_size), seconds);
  }
  void RecordDifferential(uint64_t diff_size, double seconds) {
    diff_model_.Observe(static_cast<double>(diff_size), seconds);
  }

  const OnlineLinearModel& scratch_model() const { return scratch_model_; }
  const OnlineLinearModel& diff_model() const { return diff_model_; }

 private:
  size_t chunk_size_;
  OnlineLinearModel scratch_model_;
  OnlineLinearModel diff_model_;
};

}  // namespace gs::splitting

#endif  // GRAPHSURGE_SPLITTING_ADAPTIVE_H_
