#include "splitting/adaptive.h"

namespace gs::splitting {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kDiffOnly:
      return "diff-only";
    case Strategy::kScratch:
      return "scratch";
    case Strategy::kAdaptive:
      return "adaptive";
  }
  return "?";
}

bool AdaptiveSplitter::ShouldRunScratch(size_t view_index, uint64_t view_size,
                                        uint64_t diff_size) {
  // Paper bootstrap: GV1 scratch, GV2 differential.
  if (view_index == 0) return true;
  if (view_index == 1) return false;
  double scratch_cost =
      scratch_model_.Predict(static_cast<double>(view_size));
  double diff_cost = diff_model_.Predict(static_cast<double>(diff_size));
  return scratch_cost < diff_cost;
}

bool AdaptiveSplitter::ChunkShouldRunScratch(
    const std::vector<uint64_t>& view_sizes,
    const std::vector<uint64_t>& diff_sizes,
    ChunkPrediction* prediction) {
  double scratch_cost = 0, diff_cost = 0;
  for (uint64_t s : view_sizes) {
    scratch_cost += scratch_model_.Predict(static_cast<double>(s));
  }
  for (uint64_t s : diff_sizes) {
    diff_cost += diff_model_.Predict(static_cast<double>(s));
  }
  if (prediction != nullptr) {
    prediction->scratch_seconds = scratch_cost;
    prediction->diff_seconds = diff_cost;
    prediction->models_ready = scratch_model_.num_observations() > 0 &&
                               diff_model_.num_observations() > 0;
  }
  return scratch_cost < diff_cost;
}

}  // namespace gs::splitting
