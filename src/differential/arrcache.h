// Process-level shared-arrangement cache.
//
// A dataflow built for a single-version run (one view, one graph epoch)
// constructs the same arrangements every time: the arranged adjacency of a
// graph does not depend on which session asked for it. This cache promotes
// those arrangements from per-dataflow objects to process-level shared
// state, so concurrent sessions running the same computation on the same
// graph build the adjacency arrangement once and every later (or
// concurrently waiting) run seeds its traces from the cached snapshot
// instead of re-indexing the edge set.
//
// Keying. An entry is keyed by (scope, tag):
//   scope — identifies the graph *content*: a process-unique system
//           instance id plus graph name plus mutation epoch, e.g.
//           "gs3/wiki@2". ApplyMutations bumps the epoch, so a mutation
//           invalidates exactly the stale entries (InvalidateScope).
//   tag   — identifies the dataflow *shape* on that graph: computation
//           name, worker count, weight column. Op orders are deterministic
//           per (computation, workers), so a cached slot keyed by operator
//           order always lines up with the same logical operator.
//
// Transaction protocol. views::RunOnGraph calls Begin(scope, tag) once per
// run and threads the returned transaction to the dataflow's operators via
// DataflowOptions::arrcache:
//   builder — no complete entry existed. The run executes normally;
//             qualifying operators (see below) export consolidated
//             snapshots of their traces into per-(op order, worker) slots;
//             Commit() publishes the entry and wakes waiting readers.
//             Exactly one miss is counted per built entry.
//   reader  — a complete entry existed (or a concurrent builder finished
//             while we waited). Operators with a matching slot seed their
//             traces from the shared snapshot and skip the build work.
//             Exactly one hit is counted per reading run.
//   bypass  — waiting for a concurrent builder timed out, or the builder
//             aborted; the run executes normally without touching cache
//             state.
// A builder transaction destroyed without Commit (failed run) retracts the
// pending entry and wakes waiters, which retry Begin and promote one of
// themselves to builder.
//
// Why only single-version arrangements are cacheable: a seeded trace holds
// the *final* history. At version 0 "final" and "as built so far" coincide,
// so the bilinear join discipline of arrange.h is unchanged. In a
// multi-version run a seeded trace would expose future versions to earlier
// probes and double-count against the republished deltas, so operators
// disqualify themselves the moment they observe activity at any time other
// than Time(0) — including loop iterations (SCC's inner arrangements) and
// later collection versions. Disqualified operators simply contribute no
// slot; readers missing a slot build that operator normally.
//
// Memory. Slots hold immutable, consolidated entry vectors behind
// shared_ptr; seeded traces alias them copy-on-write (trace.h SeedShared),
// so eviction or invalidation never pulls storage out from under a running
// dataflow. Total cached bytes are bounded by a byte budget
// (GRAPHSURGE_ARRCACHE_BYTES, default 256 MiB) with LRU eviction of
// complete, unpinned entries. Metrics: gs_arrcache_{hits,misses,
// evictions,bytes,entries}; /statusz renders DebugJson().
#ifndef GRAPHSURGE_DIFFERENTIAL_ARRCACHE_H_
#define GRAPHSURGE_DIFFERENTIAL_ARRCACHE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <typeinfo>
#include <utility>
#include <vector>

#include "common/introspect.h"
#include "common/metrics.h"

namespace gs::differential {

class ArrangementCache;

/// Per-run cache transaction handed to operators through
/// DataflowOptions::arrcache. Thread-safe: worker shards Put/Get
/// concurrently.
class ArrCacheTxn {
 public:
  enum class Role { kBuilder, kReader, kBypass };

  ~ArrCacheTxn();
  ArrCacheTxn(const ArrCacheTxn&) = delete;
  ArrCacheTxn& operator=(const ArrCacheTxn&) = delete;

  Role role() const { return role_; }
  bool building() const { return role_ == Role::kBuilder; }
  bool importing() const { return role_ == Role::kReader; }

  /// Reader: the cached snapshot for operator `op_order` on worker shard
  /// `worker`, or nullptr when that operator contributed no slot (it did
  /// not qualify during the build) or the element type does not match.
  template <typename E>
  std::shared_ptr<const std::vector<E>> GetRows(int op_order,
                                                int worker) const {
    std::shared_ptr<const void> p =
        GetSlot(op_order, worker, typeid(std::vector<E>));
    return std::shared_ptr<const std::vector<E>>(
        std::move(p), p ? static_cast<const std::vector<E>*>(p.get())
                        : nullptr);
  }

  /// Builder: stage a consolidated snapshot for operator `op_order` on
  /// worker shard `worker`. Staged slots become visible only at Commit().
  template <typename E>
  void PutRows(int op_order, int worker,
               std::shared_ptr<const std::vector<E>> rows) {
    if (!rows) return;
    const size_t bytes = rows->size() * sizeof(E);
    PutSlot(op_order, worker, typeid(std::vector<E>),
            std::shared_ptr<const void>(std::move(rows)), bytes);
  }

  /// Builder: publish the staged slots as a complete entry and wake
  /// waiting readers. No-op for readers/bypass. A builder transaction with
  /// zero staged slots (nothing qualified) retracts the entry instead so
  /// later runs do not "hit" an empty entry.
  void Commit();

  struct Slot {
    std::shared_ptr<const void> rows;
    const std::type_info* type = nullptr;
    size_t bytes = 0;
  };
  using SlotKey = std::pair<int, int>;  // (op order, worker shard)

 private:
  friend class ArrangementCache;

  ArrCacheTxn() = default;

  std::shared_ptr<const void> GetSlot(int op_order, int worker,
                                      const std::type_info& type) const;
  void PutSlot(int op_order, int worker, const std::type_info& type,
               std::shared_ptr<const void> rows, size_t bytes);

  ArrangementCache* cache_ = nullptr;
  Role role_ = Role::kBypass;
  std::shared_ptr<struct ArrCacheEntry> entry_;
  mutable std::mutex staged_mutex_;
  std::map<SlotKey, Slot> staged_;
  bool committed_ = false;
};

/// One cached arrangement set: the slots exported by a qualifying build of
/// (scope, tag). Immutable once `complete`.
struct ArrCacheEntry {
  std::string scope;
  std::string tag;
  bool complete = false;
  bool retracted = false;  // builder aborted; waiters must retry
  std::map<ArrCacheTxn::SlotKey, ArrCacheTxn::Slot> slots;
  size_t bytes = 0;       // sum of slot bytes
  uint64_t last_used = 0;  // logical LRU clock
  int pins = 0;           // live transactions referencing this entry
};

class ArrangementCache {
 public:
  /// The process-wide cache instance. Registered as a /statusz source
  /// ("arrangement-cache") on first use; both the cache and the
  /// registration are intentionally leaked, so the producer can never
  /// outlive the state it renders.
  static ArrangementCache& Global() {
    static ArrangementCache* cache = [] {
      auto* c = new ArrangementCache();
      introspect::Registry::Global().Register(
          "arrangement-cache", [c] { return c->DebugJson(); });
      return c;
    }();
    return *cache;
  }

  ArrangementCache() {
    if (const char* env = std::getenv("GRAPHSURGE_ARRCACHE_BYTES")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env) byte_budget_ = static_cast<size_t>(v);
    }
    if (const char* env = std::getenv("GRAPHSURGE_ARRCACHE_WAIT_MS")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env) wait_ms_ = static_cast<int64_t>(v);
    }
  }

  /// Opens a transaction for one run of the dataflow identified by `tag`
  /// over the graph identified by `scope`. An empty scope disables caching
  /// (bypass). Blocks up to the configured wait while a concurrent builder
  /// is in flight.
  std::shared_ptr<ArrCacheTxn> Begin(const std::string& scope,
                                     const std::string& tag) {
    auto txn = std::shared_ptr<ArrCacheTxn>(new ArrCacheTxn());
    txn->cache_ = this;
    if (scope.empty()) return txn;
    const std::string key = Key(scope, tag);
    std::unique_lock<std::mutex> lock(mutex_);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(wait_ms_);
    for (;;) {
      auto it = entries_.find(key);
      if (it == entries_.end()) {
        auto entry = std::make_shared<ArrCacheEntry>();
        entry->scope = scope;
        entry->tag = tag;
        entry->pins = 1;
        entries_[key] = entry;
        txn->role_ = ArrCacheTxn::Role::kBuilder;
        txn->entry_ = std::move(entry);
        stats_[key].misses++;
        Misses()->Increment();
        UpdateGauges();
        return txn;
      }
      std::shared_ptr<ArrCacheEntry> entry = it->second;
      if (entry->complete) {
        entry->pins++;
        entry->last_used = ++lru_clock_;
        txn->role_ = ArrCacheTxn::Role::kReader;
        txn->entry_ = std::move(entry);
        stats_[key].hits++;
        Hits()->Increment();
        return txn;
      }
      // A builder is in flight; wait for it to commit or retract.
      if (cv_.wait_until(lock, deadline, [&] {
            auto jt = entries_.find(key);
            return jt == entries_.end() || jt->second != entry ||
                   jt->second->complete;
          })) {
        continue;  // re-examine: hit, or promote ourselves to builder
      }
      return txn;  // timed out: bypass
    }
  }

  /// Drops every entry whose scope matches exactly (graph mutated or its
  /// owner was destroyed). Running readers keep their pinned snapshots
  /// alive through shared_ptr; the dropped entries are counted as
  /// evictions.
  void InvalidateScope(const std::string& scope) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second->scope == scope) {
        if (it->second->complete) {
          Evictions()->Increment();
        }
        it->second->retracted = true;
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    cv_.notify_all();
    UpdateGauges();
  }

  /// Drops every entry whose scope starts with `prefix` — the teardown path
  /// of an api::Graphsurge instance, whose scopes all share the
  /// "gs<instance>/" prefix.
  void InvalidateScopePrefix(const std::string& prefix) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second->scope.compare(0, prefix.size(), prefix) == 0) {
        if (it->second->complete) {
          Evictions()->Increment();
        }
        it->second->retracted = true;
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    cv_.notify_all();
    UpdateGauges();
  }

  /// Drops all entries and per-key statistics (tests).
  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, entry] : entries_) entry->retracted = true;
    entries_.clear();
    stats_.clear();
    cv_.notify_all();
    UpdateGauges();
  }

  void set_byte_budget(size_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    byte_budget_ = bytes;
    EvictLocked();
    UpdateGauges();
  }
  void set_wait_ms(int64_t ms) {
    std::lock_guard<std::mutex> lock(mutex_);
    wait_ms_ = ms;
  }

  size_t total_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return TotalBytesLocked();
  }
  size_t num_entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  /// Cumulative per-key statistics; survive eviction of the entry itself.
  struct KeyStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  struct EntryStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    size_t bytes = 0;
    int pins = 0;
    bool complete = false;
    bool resident = false;
  };
  std::optional<EntryStats> Stats(const std::string& scope,
                                  const std::string& tag) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string key = Key(scope, tag);
    auto st = stats_.find(key);
    if (st == stats_.end()) return std::nullopt;
    EntryStats out;
    out.hits = st->second.hits;
    out.misses = st->second.misses;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      out.resident = true;
      out.complete = it->second->complete;
      out.bytes = it->second->bytes;
      out.pins = it->second->pins;
    }
    return out;
  }

  /// JSON fragment for /statusz.
  std::string DebugJson() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::string s = "{\"byte_budget\": " + std::to_string(byte_budget_) +
                    ", \"bytes\": " + std::to_string(TotalBytesLocked()) +
                    ", \"entries\": [";
    bool first = true;
    for (const auto& [key, entry] : entries_) {
      if (!first) s += ", ";
      first = false;
      s += "{\"scope\": \"" + introspect::JsonEscape(entry->scope) +
           "\", \"tag\": \"" + introspect::JsonEscape(entry->tag) +
           "\", \"complete\": " + (entry->complete ? "true" : "false") +
           ", \"slots\": " + std::to_string(entry->slots.size()) +
           ", \"bytes\": " + std::to_string(entry->bytes) +
           ", \"pins\": " + std::to_string(entry->pins);
      auto st = stats_.find(key);
      if (st != stats_.end()) {
        s += ", \"hits\": " + std::to_string(st->second.hits) +
             ", \"misses\": " + std::to_string(st->second.misses);
      }
      s += "}";
    }
    s += "]}";
    return s;
  }

 private:
  friend class ArrCacheTxn;

  static std::string Key(const std::string& scope, const std::string& tag) {
    return scope + "\x1f" + tag;
  }

  static metrics::Counter* Hits() {
    static auto* c = metrics::Registry::Global().GetCounter("gs_arrcache_hits");
    return c;
  }
  static metrics::Counter* Misses() {
    static auto* c =
        metrics::Registry::Global().GetCounter("gs_arrcache_misses");
    return c;
  }
  static metrics::Counter* Evictions() {
    static auto* c =
        metrics::Registry::Global().GetCounter("gs_arrcache_evictions");
    return c;
  }
  static metrics::Gauge* Bytes() {
    static auto* g = metrics::Registry::Global().GetGauge("gs_arrcache_bytes");
    return g;
  }
  static metrics::Gauge* Entries() {
    static auto* g =
        metrics::Registry::Global().GetGauge("gs_arrcache_entries");
    return g;
  }

  size_t TotalBytesLocked() const {
    size_t total = 0;
    for (const auto& [key, entry] : entries_) total += entry->bytes;
    return total;
  }

  void UpdateGauges() {
    Bytes()->Set(static_cast<int64_t>(TotalBytesLocked()));
    Entries()->Set(static_cast<int64_t>(entries_.size()));
  }

  /// Evicts complete, unpinned entries in LRU order until the byte budget
  /// holds. Callers hold mutex_.
  void EvictLocked() {
    while (TotalBytesLocked() > byte_budget_) {
      auto victim = entries_.end();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (!it->second->complete || it->second->pins > 0) continue;
        if (victim == entries_.end() ||
            it->second->last_used < victim->second->last_used) {
          victim = it;
        }
      }
      if (victim == entries_.end()) return;  // everything pinned
      victim->second->retracted = true;
      entries_.erase(victim);
      Evictions()->Increment();
    }
  }

  /// Transaction termination. Builder commit publishes the staged slots;
  /// builder abort (or an empty commit) retracts the pending entry so a
  /// waiting reader can retry Begin and promote itself.
  void Finish(ArrCacheTxn* txn, bool commit) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<ArrCacheEntry> entry = std::move(txn->entry_);
    if (!entry) return;
    entry->pins--;
    if (txn->role_ == ArrCacheTxn::Role::kBuilder && !entry->complete) {
      const std::string key = Key(entry->scope, entry->tag);
      std::map<ArrCacheTxn::SlotKey, ArrCacheTxn::Slot> staged;
      {
        std::lock_guard<std::mutex> slock(txn->staged_mutex_);
        staged = std::move(txn->staged_);
      }
      auto it = entries_.find(key);
      const bool resident = it != entries_.end() && it->second == entry;
      if (commit && !staged.empty() && resident && !entry->retracted) {
        entry->slots = std::move(staged);
        entry->bytes = 0;
        for (const auto& [slot_key, slot] : entry->slots) {
          entry->bytes += slot.bytes;
        }
        entry->complete = true;
        entry->last_used = ++lru_clock_;
        EvictLocked();
      } else if (resident) {
        entry->retracted = true;
        entries_.erase(it);
      }
      cv_.notify_all();
      UpdateGauges();
    }
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, std::shared_ptr<ArrCacheEntry>> entries_;
  std::map<std::string, KeyStats> stats_;
  size_t byte_budget_ = 256ull << 20;
  int64_t wait_ms_ = 60000;
  uint64_t lru_clock_ = 0;
};

inline ArrCacheTxn::~ArrCacheTxn() {
  if (cache_) cache_->Finish(this, /*commit=*/false);
}

inline void ArrCacheTxn::Commit() {
  if (cache_ && !committed_) {
    committed_ = true;
    cache_->Finish(this, /*commit=*/true);
  }
}

inline std::shared_ptr<const void> ArrCacheTxn::GetSlot(
    int op_order, int worker, const std::type_info& type) const {
  if (role_ != Role::kReader || !entry_) return nullptr;
  // Entry slots are immutable once complete; no lock needed.
  auto it = entry_->slots.find(SlotKey{op_order, worker});
  if (it == entry_->slots.end()) return nullptr;
  if (it->second.type == nullptr || *it->second.type != type) return nullptr;
  return it->second.rows;
}

inline void ArrCacheTxn::PutSlot(int op_order, int worker,
                                 const std::type_info& type,
                                 std::shared_ptr<const void> rows,
                                 size_t bytes) {
  if (role_ != Role::kBuilder) return;
  std::lock_guard<std::mutex> lock(staged_mutex_);
  Slot& slot = staged_[SlotKey{op_order, worker}];
  slot.rows = std::move(rows);
  slot.type = &type;
  slot.bytes = bytes;
}

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_ARRCACHE_H_
