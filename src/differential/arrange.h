// Shared arrangements: build a keyed trace once, share it by reference.
//
// Arrange(stream) indexes a keyed stream into a Trace owned by a single
// ArrangeOp per shard and hands out Arranged<K, V> — a cheap handle pairing
// the immutable view of that trace with the stream of deltas that built it.
// Downstream consumers (JoinArranged, reduce-over-arrangement in reduce.h)
// probe the shared trace by const reference instead of each maintaining a
// private copy of the same index, so a collection joined n times is stored
// once, compacted once, and exchanged once.
//
// Correctness of sharing (DESIGN.md §3.3): the bilinear join discipline
// "probe the other side's trace containing exactly the batches processed
// earlier" survives the split of insert (ArrangeOp) from probe (consumer)
// because (a) the scheduler breaks ties on equal lex times by operator
// creation order and the ArrangeOp always precedes its consumers, so at any
// consumer run the shared trace already contains every arrangement delta
// delivered to that consumer's port, and (b) a consumer therefore processes
// stream-side deltas against the full shared trace but arrangement-side
// deltas only against its *own* stream-side trace — each (δl, δr) pair is
// counted exactly once. For arranged⋈arranged both shared traces contain
// the concurrent deltas of the other side, so the doubly-counted concurrent
// product is subtracted once per run.
//
// Loops: Arranged::Enter re-times the delta stream into the scope (iteration
// coordinate 0) but keeps pointing at the same trace — the zero-extension
// semantics of Time::LessEq/Lub make outer-depth trace entries directly
// probe-able from inner times, so entering an arrangement costs one linear
// operator and no state.
#ifndef GRAPHSURGE_DIFFERENTIAL_ARRANGE_H_
#define GRAPHSURGE_DIFFERENTIAL_ARRANGE_H_

#include <algorithm>
#include <map>
#include <utility>

#include "common/hash.h"
#include "differential/arrcache.h"
#include "differential/dataflow.h"
#include "differential/exchange.h"
#include "differential/iterate.h"
#include "differential/trace.h"

namespace gs::differential {

/// Owns the shard-local trace of an exchanged keyed stream and republishes
/// the deltas after indexing them, so every subscriber of stream() observes
/// a trace that already contains the batch it was just handed.
template <typename K, typename V>
class ArrangeOp : public OperatorBase {
 public:
  ArrangeOp(Dataflow* dataflow, Stream<std::pair<K, V>> in)
      : OperatorBase(dataflow, "arrange") {
    RegisterOutput(&output_);
    in.publisher()->Subscribe(
        dataflow, order(),
        [this](const Time& t, const Batch<std::pair<K, V>>& b) {
          port_.Append(t, b);
          RequestRun(t);
        });
    // Process-level arrangement cache (arrcache.h). A reader run with a
    // cached snapshot for this operator seeds the trace up front and skips
    // indexing; a builder run exports its trace when version 0 seals —
    // unless activity at any other time disqualifies it (see RunAt).
    if (ArrCacheTxn* txn = dataflow->options().arrcache.get()) {
      if (txn->importing()) {
        auto rows = txn->GetRows<typename Trace<K, V>::Entry>(
            static_cast<int>(order()),
            static_cast<int>(dataflow->worker_index()));
        if (rows != nullptr) {
          trace_.SeedShared(std::move(rows));
          import_ = true;
        }
      } else if (txn->building()) {
        export_ = true;
      }
    }
  }

  const Trace<K, V>* trace() const { return &trace_; }
  Stream<std::pair<K, V>> stream() {
    return Stream<std::pair<K, V>>(dataflow_, &output_);
  }

  void OnVersionSealed(uint32_t version) override {
    trace_.CompactTo(version);
    if (export_) {
      // Only a pure version-0 arrangement snapshot equals its own final
      // history at every consumer execution (see arrcache.h); anything
      // beyond version 0 was already disqualified in RunAt.
      if (version == 0) {
        dataflow_->options().arrcache->PutRows(
            static_cast<int>(order()),
            static_cast<int>(dataflow_->worker_index()),
            trace_.ExportConsolidated());
      }
      export_ = false;
    }
  }

  void OnEpochSealed(uint32_t last_version) override {
    trace_.CompactEpoch(last_version);
  }

  void CollectMemory(OperatorMemory* out) const override {
    out->AddTrace(trace_);
    out->queued_bytes += port_.buffered_bytes();
  }

 private:
  void RunAt(const Time& time) override {
    Batch<std::pair<K, V>> batch = port_.Take(time);
    if (batch.empty()) return;
    if (!(time == Time(0))) export_ = false;  // multi-time: not cacheable
    if (import_) {
      // The seeded trace already holds exactly these entries (the cached
      // snapshot was exported from an identical run); only republish.
      // Cached slots exist only for operators that proved all activity
      // lands at Time(0) during the build, and op orders are deterministic
      // per (computation, workers), so imported activity elsewhere is a
      // structural impossibility.
      GS_CHECK(time == Time(0))
          << "imported arrangement received activity at " << time.ToString();
    } else {
      for (const auto& u : batch) {
        trace_.Insert(u.data.first, u.data.second, time, u.diff);
      }
    }
    output_.Publish(dataflow_, time, std::move(batch));
  }

  InputPort<std::pair<K, V>> port_;
  Trace<K, V> trace_;
  Publisher<std::pair<K, V>> output_;
  bool import_ = false;  // trace seeded from the cache; skip indexing
  bool export_ = false;  // builder run; snapshot the trace at version 0 seal
};

/// Handle to a shared arrangement: the (single-writer) trace plus the delta
/// stream that feeds it. Copyable and cheap — copies share the same trace.
template <typename K, typename V>
class Arranged {
 public:
  Arranged() = default;
  Arranged(const Trace<K, V>* trace, Stream<std::pair<K, V>> deltas)
      : trace_(trace), deltas_(deltas) {}

  const Trace<K, V>* trace() const { return trace_; }
  Stream<std::pair<K, V>> deltas() const { return deltas_; }
  Dataflow* dataflow() const { return deltas_.dataflow(); }
  bool valid() const { return trace_ != nullptr; }

  /// Brings the arrangement into an iterative scope: the deltas are entered
  /// (iteration coordinate pinned at 0), the trace is shared as-is.
  Arranged Enter(LoopScope& scope) const {
    return Arranged(trace_, scope.Enter(deltas_));
  }

 private:
  const Trace<K, V>* trace_ = nullptr;
  Stream<std::pair<K, V>> deltas_;
};

/// Arranges a keyed stream: exchanges it by key (so the shard-local trace
/// holds exactly the keys this worker owns) and indexes it once.
template <typename K, typename V>
Arranged<K, V> Arrange(Stream<std::pair<K, V>> in) {
  in = ExchangeByKey(in);
  auto* op = in.dataflow()->template AddOperator<ArrangeOp<K, V>>(in);
  return Arranged<K, V>(op->trace(), op->stream());
}

/// stream ⋈ arranged. Owns a trace for the stream side only; the arranged
/// side is probed through the shared trace.
template <typename K, typename V1, typename V2, typename Out, typename Fn>
class JoinStreamArrangedOp : public OperatorBase {
 public:
  JoinStreamArrangedOp(Dataflow* dataflow, Stream<std::pair<K, V1>> left,
                       const Arranged<K, V2>& right, Fn fn)
      : OperatorBase(dataflow, "join_arranged"),
        fn_(std::move(fn)),
        right_trace_(right.trace()) {
    dataflow->stats().arrangement_shares++;
    RegisterOutput(&output_);
    left.publisher()->Subscribe(
        dataflow, order(),
        [this](const Time& t, const Batch<std::pair<K, V1>>& b) {
          left_port_.Append(t, b);
          RequestRun(t);
        });
    right.deltas().publisher()->Subscribe(
        dataflow, order(),
        [this](const Time& t, const Batch<std::pair<K, V2>>& b) {
          right_port_.Append(t, b);
          RequestRun(t);
        });
  }

  Stream<Out> stream() { return Stream<Out>(dataflow_, &output_); }

  void OnVersionSealed(uint32_t version) override {
    left_.CompactTo(version);
  }

  void OnEpochSealed(uint32_t last_version) override {
    left_.CompactEpoch(last_version);
  }

  void CollectMemory(OperatorMemory* out) const override {
    out->AddTrace(left_);
    out->queued_bytes +=
        left_port_.buffered_bytes() + right_port_.buffered_bytes();
  }

 private:
  using OutBuckets = std::map<Time, Batch<Out>, TimeLexLess>;

  void RunAt(const Time& time) override {
    Batch<std::pair<K, V1>> left_batch = left_port_.Take(time);
    Batch<std::pair<K, V2>> right_batch = right_port_.Take(time);
    OutBuckets out;
    // Arrangement deltas join this op's own left trace, which excludes the
    // concurrent left batch (not yet inserted); left deltas then join the
    // shared trace, which includes the concurrent arrangement batch (the
    // ArrangeOp ran first) — each (δl, δr) pair contributes exactly once.
    for (const auto& u : right_batch) {
      const K& key = u.data.first;
      const uint64_t key_hash = HashValue(key);
      left_.ForEach(key, [&](const V1& value, const Time& entry_time,
                             Diff entry_diff) {
        dataflow_->stats().join_matches++;
        dataflow_->stats().AddShardWork(key_hash, 1);
        out[time.Lub(entry_time)].push_back(Update<Out>{
            fn_(key, value, u.data.second), entry_diff * u.diff});
      });
    }
    for (const auto& u : left_batch) {
      const K& key = u.data.first;
      const uint64_t key_hash = HashValue(key);
      dataflow_->stats().arrangement_probes++;
      right_trace_->ForEach(key, [&](const V2& value, const Time& entry_time,
                                     Diff entry_diff) {
        dataflow_->stats().join_matches++;
        dataflow_->stats().AddShardWork(key_hash, 1);
        out[time.Lub(entry_time)].push_back(Update<Out>{
            fn_(key, u.data.second, value), u.diff * entry_diff});
      });
      left_.Insert(key, u.data.second, time, u.diff);
    }
    for (auto& [t, batch] : out) {
      output_.Publish(dataflow_, t, std::move(batch));
    }
  }

  Fn fn_;
  InputPort<std::pair<K, V1>> left_port_;
  InputPort<std::pair<K, V2>> right_port_;
  Trace<K, V1> left_;
  const Trace<K, V2>* right_trace_;
  Publisher<Out> output_;
};

/// arranged ⋈ arranged. Owns no trace at all: both sides probe the other's
/// shared trace; because each shared trace also contains its own side's
/// concurrent deltas (both ArrangeOps ran before this consumer at any tied
/// time), the concurrent δa×δb product is counted twice by the probes and
/// subtracted once.
template <typename K, typename V1, typename V2, typename Out, typename Fn>
class JoinArrangedArrangedOp : public OperatorBase {
 public:
  JoinArrangedArrangedOp(Dataflow* dataflow, const Arranged<K, V1>& left,
                         const Arranged<K, V2>& right, Fn fn)
      : OperatorBase(dataflow, "join_arranged"),
        fn_(std::move(fn)),
        left_trace_(left.trace()),
        right_trace_(right.trace()) {
    dataflow->stats().arrangement_shares += 2;
    RegisterOutput(&output_);
    left.deltas().publisher()->Subscribe(
        dataflow, order(),
        [this](const Time& t, const Batch<std::pair<K, V1>>& b) {
          left_port_.Append(t, b);
          RequestRun(t);
        });
    right.deltas().publisher()->Subscribe(
        dataflow, order(),
        [this](const Time& t, const Batch<std::pair<K, V2>>& b) {
          right_port_.Append(t, b);
          RequestRun(t);
        });
  }

  Stream<Out> stream() { return Stream<Out>(dataflow_, &output_); }

  void CollectMemory(OperatorMemory* out) const override {
    out->queued_bytes +=
        left_port_.buffered_bytes() + right_port_.buffered_bytes();
  }

 private:
  using OutBuckets = std::map<Time, Batch<Out>, TimeLexLess>;

  void RunAt(const Time& time) override {
    Batch<std::pair<K, V1>> left_batch = left_port_.Take(time);
    Batch<std::pair<K, V2>> right_batch = right_port_.Take(time);
    OutBuckets out;
    for (const auto& u : left_batch) {
      const K& key = u.data.first;
      const uint64_t key_hash = HashValue(key);
      dataflow_->stats().arrangement_probes++;
      right_trace_->ForEach(key, [&](const V2& value, const Time& entry_time,
                                     Diff entry_diff) {
        dataflow_->stats().join_matches++;
        dataflow_->stats().AddShardWork(key_hash, 1);
        out[time.Lub(entry_time)].push_back(Update<Out>{
            fn_(key, u.data.second, value), u.diff * entry_diff});
      });
    }
    for (const auto& u : right_batch) {
      const K& key = u.data.first;
      const uint64_t key_hash = HashValue(key);
      dataflow_->stats().arrangement_probes++;
      left_trace_->ForEach(key, [&](const V1& value, const Time& entry_time,
                                    Diff entry_diff) {
        dataflow_->stats().join_matches++;
        dataflow_->stats().AddShardWork(key_hash, 1);
        out[time.Lub(entry_time)].push_back(Update<Out>{
            fn_(key, value, u.data.second), entry_diff * u.diff});
      });
    }
    // Subtract the doubly-counted concurrent product. Both batches reached
    // the shared traces at times whose lub with `time` is exactly `time`,
    // so the correction lands at `time`.
    if (!left_batch.empty() && !right_batch.empty()) {
      auto key_less = [](const auto& a, const auto& b) {
        return a.data.first < b.data.first;
      };
      std::sort(left_batch.begin(), left_batch.end(), key_less);
      std::sort(right_batch.begin(), right_batch.end(), key_less);
      size_t i = 0, j = 0;
      while (i < left_batch.size() && j < right_batch.size()) {
        const K& lk = left_batch[i].data.first;
        const K& rk = right_batch[j].data.first;
        if (lk < rk) {
          ++i;
        } else if (rk < lk) {
          ++j;
        } else {
          size_t i_end = i, j_end = j;
          while (i_end < left_batch.size() &&
                 left_batch[i_end].data.first == lk) {
            ++i_end;
          }
          while (j_end < right_batch.size() &&
                 right_batch[j_end].data.first == lk) {
            ++j_end;
          }
          for (size_t a = i; a < i_end; ++a) {
            for (size_t b = j; b < j_end; ++b) {
              out[time].push_back(Update<Out>{
                  fn_(lk, left_batch[a].data.second,
                      right_batch[b].data.second),
                  -left_batch[a].diff * right_batch[b].diff});
            }
          }
          i = i_end;
          j = j_end;
        }
      }
    }
    for (auto& [t, batch] : out) {
      output_.Publish(dataflow_, t, std::move(batch));
    }
  }

  Fn fn_;
  InputPort<std::pair<K, V1>> left_port_;
  InputPort<std::pair<K, V2>> right_port_;
  const Trace<K, V1>* left_trace_;
  const Trace<K, V2>* right_trace_;
  Publisher<Out> output_;
};

/// Joins a keyed stream against a shared arrangement; fn(key, v1, v2) with
/// v1 from the stream, v2 from the arrangement. Only the stream side is
/// exchanged — the arrangement is already partitioned by key.
template <typename K, typename V1, typename V2, typename Fn>
auto JoinArranged(Stream<std::pair<K, V1>> left, const Arranged<K, V2>& right,
                  Fn fn) {
  using Out = std::decay_t<decltype(fn(std::declval<const K&>(),
                                       std::declval<const V1&>(),
                                       std::declval<const V2&>()))>;
  left = ExchangeByKey(left);
  auto* op = left.dataflow()
                 ->template AddOperator<
                     JoinStreamArrangedOp<K, V1, V2, Out, Fn>>(
                     left, right, std::move(fn));
  return op->stream();
}

/// Arrangement-first overload; fn(key, v1, v2) with v1 from the arrangement.
template <typename K, typename V1, typename V2, typename Fn>
auto JoinArranged(const Arranged<K, V1>& left, Stream<std::pair<K, V2>> right,
                  Fn fn) {
  auto flipped = [fn = std::move(fn)](const K& key, const V2& r,
                                      const V1& l) { return fn(key, l, r); };
  return JoinArranged(right, left, std::move(flipped));
}

/// Joins two shared arrangements; no per-join index is built at all.
template <typename K, typename V1, typename V2, typename Fn>
auto JoinArranged(const Arranged<K, V1>& left, const Arranged<K, V2>& right,
                  Fn fn) {
  using Out = std::decay_t<decltype(fn(std::declval<const K&>(),
                                       std::declval<const V1&>(),
                                       std::declval<const V2&>()))>;
  auto* op = left.dataflow()
                 ->template AddOperator<
                     JoinArrangedArrangedOp<K, V1, V2, Out, Fn>>(
                     left, right, std::move(fn));
  return op->stream();
}

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_ARRANGE_H_
