// Iterative (fixpoint) scopes.
//
// Iterate(input, body) computes the fixpoint of `body` applied to `input`:
// the loop variable at iteration 0 is the scope input; at iteration i+1 it
// is body's output at iteration i. The feedback stream is derived as
//
//   δfb(v, ı⃗, j) = δbody(v, ı⃗, j-1) - δinput(v, ı⃗, j-1)
//
// (input diffs only exist at j-1 = 0), i.e. `concat(body, negate(ingress))`
// delayed by one iteration — summing gives var@(v,·,j) = body@(v,·,j-1) as
// required. The loop terminates when body's diffs vanish (the scheduler
// drains); IterateOptions::max_iterations caps non-converging programs such
// as PageRank, which runs a fixed iteration count.
#ifndef GRAPHSURGE_DIFFERENTIAL_ITERATE_H_
#define GRAPHSURGE_DIFFERENTIAL_ITERATE_H_

#include <map>
#include <utility>

#include "differential/dataflow.h"
#include "differential/operators.h"

namespace gs::differential {

/// Scope ingress: lifts a stream into the loop by appending an iteration
/// coordinate fixed at 0. Outer diffs at (v, ı⃗) become (v, ı⃗, 0) and are
/// therefore ≤ every iteration of the loop — exactly how DD "enters" static
/// collections (e.g. edges) into iterative scopes.
template <typename D>
class EnterOp : public OperatorBase {
 public:
  EnterOp(Dataflow* dataflow, Stream<D> in)
      : OperatorBase(dataflow, "enter") {
    RegisterOutput(&output_);
    in.publisher()->Subscribe(dataflow, order(),
                              [this](const Time& t, const Batch<D>& b) {
                                Batch<D> copy = b;
                                output_.Publish(dataflow_, t.Entered(),
                                                std::move(copy));
                              });
  }

  Stream<D> stream() { return Stream<D>(dataflow_, &output_); }

 private:
  Publisher<D> output_;
};

/// Scope egress: accumulates inner diffs per outer time and emits one
/// consolidated batch at the outer time once the inner loop has quiesced
/// for it. Uses a sentinel event at iteration ∞ so it sorts after all inner
/// work; late corrections simply trigger another (incremental) flush.
template <typename D>
class LeaveOp : public OperatorBase {
 public:
  LeaveOp(Dataflow* dataflow, Stream<D> in)
      : OperatorBase(dataflow, "leave") {
    RegisterOutput(&output_);
    in.publisher()->Subscribe(dataflow, order(),
                              [this](const Time& t, const Batch<D>& b) {
                                OnInput(t, b);
                              });
  }

  Stream<D> stream() { return Stream<D>(dataflow_, &output_); }

  void CollectMemory(OperatorMemory* out) const override {
    size_t pending = 0;
    for (const auto& [outer, held] : held_) pending += held.pending.size();
    out->queued_bytes += pending * sizeof(Update<D>);
  }

 private:
  struct Held {
    Batch<D> pending;
    bool flush_scheduled = false;
  };

  void OnInput(const Time& time, const Batch<D>& batch) {
    Time outer = time.Left();
    Held& held = held_[outer];
    held.pending.insert(held.pending.end(), batch.begin(), batch.end());
    if (!held.flush_scheduled) {
      held.flush_scheduled = true;
      Time sentinel = outer.Entered();
      sentinel.iters[sentinel.depth - 1] = kIterInfinity;
      dataflow_->scheduler().Schedule(sentinel, order(),
                                      [this, outer] { Flush(outer); });
    }
  }

  void Flush(const Time& outer) {
    auto it = held_.find(outer);
    if (it == held_.end()) return;
    it->second.flush_scheduled = false;
    Batch<D> batch = std::move(it->second.pending);
    it->second.pending.clear();
    output_.Publish(dataflow_, outer, std::move(batch));
  }

  std::map<Time, Held, TimeLexLess> held_;
  Publisher<D> output_;
};

/// The loop feedback edge: forwards diffs delayed by one iteration,
/// dropping anything beyond the iteration cap.
///
/// Feedback is a *buffered* operator: all diffs arriving at a time are
/// consolidated before being forwarded. This matters for loop bodies with a
/// linear pass-through of the loop variable (e.g. antijoin's
/// concat-negate): the pass-through diff and its cancelling counterpart
/// must annihilate here, otherwise they would circulate (and, with
/// synchronous linear delivery, recurse) forever. Buffering also bounds
/// call-stack depth: every dataflow cycle contains this scheduled hop.
template <typename D>
class FeedbackOp : public OperatorBase {
 public:
  FeedbackOp(Dataflow* dataflow, uint32_t max_iterations)
      : OperatorBase(dataflow, "feedback"), max_iterations_(max_iterations) {
    RegisterOutput(&output_);
  }

  Stream<D> stream() { return Stream<D>(dataflow_, &output_); }

  void ConnectForward(Stream<D> in) {
    in.publisher()->Subscribe(dataflow_, order(),
                              [this](const Time& t, const Batch<D>& b) {
                                port_.Append(t, b);
                                RequestRun(t);
                              });
  }

  void ConnectNegated(Stream<D> in) {
    in.publisher()->Subscribe(dataflow_, order(),
                              [this](const Time& t, const Batch<D>& b) {
                                Batch<D> negated = b;
                                for (Update<D>& u : negated) u.diff = -u.diff;
                                port_.Append(t, negated);
                                RequestRun(t);
                              });
  }

  void CollectMemory(OperatorMemory* out) const override {
    out->queued_bytes += port_.buffered_bytes();
  }

 private:
  void RunAt(const Time& time) override {
    Batch<D> batch = port_.Take(time);
    Time delayed = time.Delayed();
    if (delayed.inner_iteration() > max_iterations_) return;
    output_.Publish(dataflow_, delayed, std::move(batch));
  }

  InputPort<D> port_;
  uint32_t max_iterations_;
  Publisher<D> output_;
};

/// Handle passed to the loop body for bringing outer streams into scope.
class LoopScope {
 public:
  explicit LoopScope(Dataflow* dataflow) : dataflow_(dataflow) {}

  template <typename T>
  Stream<T> Enter(Stream<T> outer) {
    auto* op = dataflow_->AddOperator<EnterOp<T>>(outer);
    return op->stream();
  }

  /// Egresses a side stream out of the scope (consolidated per outer time).
  /// Used by computations that emit results from inside a loop, e.g. the
  /// SCC coloring algorithm assigning component ids per peeling round.
  template <typename T>
  Stream<T> Leave(Stream<T> inner) {
    auto* op = dataflow_->AddOperator<LeaveOp<T>>(inner);
    return op->stream();
  }

  Dataflow* dataflow() const { return dataflow_; }

 private:
  Dataflow* dataflow_;
};

struct IterateOptions {
  /// Maximum loop iteration index fed back (var@max is still computed).
  uint32_t max_iterations = 1u << 20;
};

/// Builds an iterative scope. `body` receives the scope and the loop
/// variable stream and returns the new value of the variable; the returned
/// stream is the fixpoint, at the scope's outer depth.
template <typename D, typename BodyFn>
Stream<D> Iterate(Stream<D> input, BodyFn body,
                  IterateOptions options = IterateOptions()) {
  Dataflow* df = input.dataflow();
  auto* ingress = df->AddOperator<EnterOp<D>>(input);
  auto* feedback = df->AddOperator<FeedbackOp<D>>(options.max_iterations);
  Stream<D> variable = ingress->stream().Concat(feedback->stream());
  LoopScope scope(df);
  Stream<D> result = body(scope, variable);
  feedback->ConnectForward(result);
  feedback->ConnectNegated(ingress->stream());
  auto* egress = df->AddOperator<LeaveOp<D>>(result);
  return egress->stream();
}

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_ITERATE_H_
