// Dataflow construction and execution: operators, publishers, streams, and
// the per-version driver loop. See DESIGN.md §3 for the execution model.
//
// Usage sketch (Bellman-Ford-like):
//
//   Dataflow df;
//   auto edges = df.NewInput<WeightedEdge>();
//   auto roots = df.NewInput<std::pair<VertexId, int64_t>>();
//   auto dists = Iterate<std::pair<VertexId, int64_t>>(
//       roots.stream(), [&](LoopScope& scope, auto inner) {
//         auto e = scope.Enter(edges.stream());
//         ...
//       });
//   auto capture = Capture(dists);
//   edges.Send(...); roots.Send(...);
//   df.Step();   // version 0 to fixpoint
//   edges.Send(...);  // differences only
//   df.Step();   // version 1 shares computation
#ifndef GRAPHSURGE_DIFFERENTIAL_DATAFLOW_H_
#define GRAPHSURGE_DIFFERENTIAL_DATAFLOW_H_

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/timer.h"
#include "common/trace_event.h"
#include "differential/fuzz_hooks.h"
#include "differential/scheduler.h"
#include "differential/time.h"
#include "differential/update.h"

namespace gs::differential {

class Dataflow;
class ExchangeHub;   // defined in exchange.h
class ArrCacheTxn;   // defined in arrcache.h

/// Execution parameters.
struct DataflowOptions {
  /// Worker parallelism. A ShardedDataflow (sharded.h) with num_workers = W
  /// runs W worker shards, each owning its own Scheduler, operator state,
  /// and traces; keyed operators (join/reduce) hash-partition their input
  /// across shards through exchange queues, mirroring Timely worker
  /// parallelism in-process. 1 = serial. A standalone Dataflow constructed
  /// directly never shards — there num_workers only sizes the modeled
  /// `shard_work` accounting.
  size_t num_workers = 1;
  /// Safety cap on events processed within one version (divergence guard).
  /// In sharded mode the cap applies per worker shard.
  uint64_t max_events_per_version = 1ull << 34;
  /// Default cap on loop iterations (Iterate may override per-scope).
  uint32_t max_iterations = 1u << 20;
  /// When true (default), algorithm builders index shared collections once
  /// per shard through Arrange() (arrange.h) and probe the shared trace from
  /// every consumer. When false they fall back to per-operator private
  /// traces (the pre-arrangement plan shape) — kept selectable so
  /// equivalence tests can compare the two plans on identical input.
  bool use_arrangements = true;
  /// Per-run transaction against the process-level shared-arrangement
  /// cache (arrcache.h), threaded to operators by views::RunOnGraph. When
  /// set, qualifying arrangement owners (ArrangeOp, arranged ReduceOp)
  /// either export their built traces (builder role) or seed them from the
  /// cached snapshot and skip the build (reader role). Null → every
  /// dataflow builds its own arrangements, the pre-cache behavior.
  std::shared_ptr<ArrCacheTxn> arrcache;
};

/// Aggregate counters. `updates_published` is the engine's measure of work
/// performed; the scalability bench derives modeled critical-path time from
/// the per-shard breakdown kept by keyed operators.
///
/// Thread model: each worker shard owns a private DataflowStats and updates
/// it without synchronization; cross-worker aggregation happens only through
/// Merge() after a barrier (ShardedDataflow::AggregatedStats), so no counter
/// is ever written concurrently.
struct DataflowStats {
  uint64_t updates_published = 0;
  uint64_t join_matches = 0;
  uint64_t reduce_evaluations = 0;
  uint64_t batches_published = 0;
  uint64_t exchanged_updates = 0;  // updates routed to a different shard
  /// Payload bytes pushed into peer shards' exchange inboxes (record size ×
  /// update count; wire format equals in-memory format in-process).
  uint64_t exchanged_bytes = 0;
  /// Reads of a *shared* arrangement trace by a consumer that does not own
  /// it (JoinArranged probes, reduce-over-arrangement accumulations) — the
  /// work the pre-arrangement plan would have answered from private copies.
  uint64_t arrangement_probes = 0;
  /// Consumers attached to a shared arrangement (JoinArranged /
  /// ReduceArranged endpoints), counted at graph construction. Each share is
  /// one private trace the pre-arrangement plan would have built and
  /// maintained redundantly.
  uint64_t arrangement_shares = 0;
  /// Trace-size gauges, refreshed at each SealPhase: total entries and
  /// spine batches across all operator-owned traces, post-compaction.
  /// Merge() sums them, so a sharded aggregate is the fleet-wide total.
  uint64_t trace_entries = 0;
  uint64_t trace_spine_batches = 0;
  /// Memory-accounting gauges, refreshed alongside the trace gauges above:
  /// live resident bytes across all operator-owned traces (entry count ×
  /// sizeof(Entry), see Trace::kEntryBytes), the high-water mark of that
  /// figure, cumulative bytes reclaimed by consolidation/compaction, and
  /// updates currently buffered in operator input ports + exchange inboxes.
  uint64_t trace_bytes = 0;
  uint64_t trace_high_water_bytes = 0;
  uint64_t trace_reclaimed_bytes = 0;
  uint64_t queued_update_bytes = 0;
  /// Cumulative spine maintenance counters, re-reported at each seal like
  /// the gauges above: batch merges performed (geometric invariant + full
  /// compactions) and full-spine compaction passes run.
  uint64_t trace_spine_merges = 0;
  uint64_t trace_compactions = 0;
  /// Wall time per operator, folded in at each SealPhase: RunAt plus the
  /// operator's OnStepBegin / OnVersionSealed work (input flushes, trace
  /// compaction). A stateful operator's RunAt includes the synchronous
  /// linear subscribers it feeds (map/filter chains run inside Publish).
  /// Keys follow the `name@shard` convention in sharded execution (see
  /// NormalizeOpName), so merging shards never conflates distinct shards'
  /// entries.
  std::map<std::string, uint64_t> op_nanos;
  /// Work attributed to each key shard (hash(key) % num_workers) by keyed
  /// operators. The scalability bench derives the modeled critical-path
  /// time of a W-worker run as max(shard_work) / mean(shard_work). In
  /// sharded execution worker w only ever touches keys it owns, so its
  /// shard_work is non-zero only at index w and Merge reassembles the
  /// per-shard breakdown.
  std::vector<uint64_t> shard_work;

  void AddShardWork(uint64_t key_hash, uint64_t amount) {
    if (!shard_work.empty()) {
      shard_work[key_hash % shard_work.size()] += amount;
    }
  }

  /// Folds another stats object into this one (element-wise sums). op_nanos
  /// keys are summed verbatim: worker shards record under distinct
  /// `name@shard` keys, so a merge across shards is lossless — use
  /// AggregatedOpNanos() for the per-operator rollup.
  void Merge(const DataflowStats& other) {
    updates_published += other.updates_published;
    join_matches += other.join_matches;
    reduce_evaluations += other.reduce_evaluations;
    batches_published += other.batches_published;
    exchanged_updates += other.exchanged_updates;
    exchanged_bytes += other.exchanged_bytes;
    arrangement_probes += other.arrangement_probes;
    arrangement_shares += other.arrangement_shares;
    trace_entries += other.trace_entries;
    trace_spine_batches += other.trace_spine_batches;
    trace_bytes += other.trace_bytes;
    trace_high_water_bytes += other.trace_high_water_bytes;
    trace_reclaimed_bytes += other.trace_reclaimed_bytes;
    queued_update_bytes += other.queued_update_bytes;
    trace_spine_merges += other.trace_spine_merges;
    trace_compactions += other.trace_compactions;
    for (const auto& [name, nanos] : other.op_nanos) {
      op_nanos[name] += nanos;
    }
    if (shard_work.size() < other.shard_work.size()) {
      shard_work.resize(other.shard_work.size(), 0);
    }
    for (size_t i = 0; i < other.shard_work.size(); ++i) {
      shard_work[i] += other.shard_work[i];
    }
  }

  /// Canonical operator key: lower-cased, with any `@<digits>` shard suffix
  /// stripped. "Join@3" and "join@0" both normalize to "join".
  static std::string NormalizeOpName(std::string name) {
    size_t at = name.rfind('@');
    if (at != std::string::npos && at + 1 < name.size()) {
      bool digits = true;
      for (size_t i = at + 1; i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9') {
          digits = false;
          break;
        }
      }
      if (digits) name.resize(at);
    }
    for (char& c : name) {
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    }
    return name;
  }

  /// Per-operator wall time rolled up across shards: op_nanos with keys
  /// normalized (shard suffixes stripped) and equal names summed.
  std::map<std::string, uint64_t> AggregatedOpNanos() const {
    std::map<std::string, uint64_t> aggregated;
    for (const auto& [name, nanos] : op_nanos) {
      aggregated[NormalizeOpName(name)] += nanos;
    }
    return aggregated;
  }
};

/// Point-in-time memory attribution for one operator, filled in by
/// OperatorBase::CollectMemory overrides. Byte figures are entry counts ×
/// fixed record sizes (Trace::kEntryBytes, sizeof(Update<D>)), not malloc
/// capacity — deterministic across execution orders, so serial == sum of
/// shards holds exactly and /statusz gauges can be checked against a manual
/// spine-size computation.
struct OperatorMemory {
  /// Updates buffered in input ports + exchange inboxes, in bytes.
  uint64_t queued_bytes = 0;
  uint64_t trace_entries = 0;
  uint64_t trace_bytes = 0;
  uint64_t trace_batches = 0;
  uint64_t trace_high_water_bytes = 0;
  uint64_t trace_reclaimed_bytes = 0;
  uint64_t trace_merges = 0;
  uint64_t trace_compactions = 0;

  /// Folds one owned trace's accounting into this snapshot.
  template <typename Tr>
  void AddTrace(const Tr& trace) {
    trace_entries += trace.total_entries();
    trace_bytes += trace.live_bytes();
    trace_batches += trace.num_spine_batches();
    trace_high_water_bytes += trace.high_water_bytes();
    trace_reclaimed_bytes += trace.reclaimed_bytes();
    trace_merges += trace.num_merges();
    trace_compactions += trace.num_compactions();
  }
};

/// Base class of all operators; concrete operators are created through
/// Dataflow::AddOperator and owned by the Dataflow.
///
/// Delivery model: linear (stateless) operators run synchronously inside
/// Publisher::Publish. Stateful operators (join, reduce, scope egress)
/// instead buffer incoming batches per timestamp in InputPorts and call
/// RequestRun(t); the scheduler then invokes RunAt(t) exactly once per
/// pending (operator, time), which drains *all* buffered input at t
/// atomically. This per-timestamp atomicity mirrors DD's frontier-batched
/// operator execution and is essential: processing a retraction and its
/// matching re-assertion separately would send transient correction pairs
/// around feedback loops forever.
class OperatorBase {
 public:
  OperatorBase(Dataflow* dataflow, std::string name);
  virtual ~OperatorBase();

  uint32_t order() const { return order_; }
  const std::string& name() const { return name_; }

  /// Hook called when Step() begins (inputs flush their buffers here).
  virtual void OnStepBegin(uint32_t version) {}
  /// Hook called after a version reaches quiescence (traces compact here).
  virtual void OnVersionSealed(uint32_t version) {}
  /// Hook called when a graph-update epoch is sealed (Dataflow::SealEpoch):
  /// every version of the finished epoch is final and no future input will
  /// land at or before `last_version`, so trace-owning operators compact
  /// their full spines (Trace::CompactEpoch) under the looser epoch guard.
  virtual void OnEpochSealed(uint32_t last_version) {}

  /// Stateful operators override this to attribute their resident memory
  /// (owned traces, buffered input) into `out`. Called from SealPhase on
  /// the shard's own thread (never concurrently with operator execution),
  /// then folded into DataflowStats and the per-arrangement gauges.
  virtual void CollectMemory(OperatorMemory* out) const {}

  /// Returns and resets the wall time this operator spent in RunAt since
  /// the last call (folded into DataflowStats::op_nanos at each seal).
  uint64_t TakeRunNanos() {
    uint64_t nanos = run_nanos_;
    total_run_nanos_ += nanos;
    run_nanos_ = 0;
    return nanos;
  }

  /// Cumulative wall time across the operator's lifetime (advanced by
  /// TakeRunNanos at each seal; surfaced by /statusz).
  uint64_t total_run_nanos() const { return total_run_nanos_; }

  /// Attributes extra wall time to this operator. The Dataflow uses this to
  /// charge OnStepBegin / OnVersionSealed work (input flushes, compaction)
  /// to the operator that performed it, so per-operator profiles account
  /// for (nearly) all engine time, not just RunAt.
  void AddRunNanos(uint64_t nanos) { run_nanos_ += nanos; }

  /// Refreshes this operator's per-arrangement registry gauges from a
  /// memory snapshot. Gauges are created lazily on the first snapshot with
  /// any trace footprint (linear operators never allocate any); the
  /// destructor zeroes the live gauges so torn-down dataflows stop
  /// claiming memory in /statusz and /metrics.
  void UpdateMemoryGauges(const OperatorMemory& memory);

 protected:
  /// Schedules RunAt(t) unless one is already pending for t.
  void RequestRun(const Time& time);

  /// Stateful operators override this to drain their ports at `time`.
  virtual void RunAt(const Time& time) {}

  /// Records this operator as the owner of `publisher` (its output handle)
  /// so Dataflow::GraphEdges can resolve subscriptions into operator →
  /// operator channels for /statusz. Call once per output in the ctor.
  void RegisterOutput(const void* publisher);

  Dataflow* dataflow_;

 private:
  struct MemoryGauges {
    metrics::Gauge* bytes = nullptr;
    metrics::Gauge* batches = nullptr;
    metrics::Gauge* high_water = nullptr;
    metrics::Gauge* reclaimed = nullptr;
  };

  uint32_t order_ = 0;
  std::string name_;
  uint64_t run_nanos_ = 0;
  uint64_t total_run_nanos_ = 0;
  MemoryGauges gauges_;
  std::set<Time, TimeLexLess> run_pending_;
};

/// A per-timestamp input buffer for stateful operators.
template <typename D>
class InputPort {
 public:
  void Append(const Time& time, const Batch<D>& batch) {
    Batch<D>& pending = buffers_[time];
    pending.insert(pending.end(), batch.begin(), batch.end());
  }

  /// Removes and returns the (consolidated) buffered batch at `time`.
  Batch<D> Take(const Time& time) {
    auto it = buffers_.find(time);
    if (it == buffers_.end()) return {};
    Batch<D> batch = std::move(it->second);
    buffers_.erase(it);
    Consolidate(&batch);
    return batch;
  }

  /// Updates currently buffered across all pending timestamps.
  size_t buffered_updates() const {
    size_t n = 0;
    for (const auto& [time, batch] : buffers_) n += batch.size();
    return n;
  }
  /// Buffered payload bytes (record size × update count), for the
  /// queued-update memory accounting in /statusz.
  size_t buffered_bytes() const {
    return buffered_updates() * sizeof(Update<D>);
  }

 private:
  std::map<Time, Batch<D>, TimeLexLess> buffers_;
};

/// Fan-out point owned by a producing operator. Publishing consolidates the
/// batch and schedules one delivery event per subscriber.
template <typename D>
class Publisher {
 public:
  using Callback = std::function<void(const Time&, const Batch<D>&)>;

  /// Subscribes `op_order`'s callback and records the (publisher →
  /// consumer) channel in the dataflow's graph topology, so /statusz can
  /// render operators and channels without walking live operator state.
  /// Defined after Dataflow (it records the edge there).
  void Subscribe(Dataflow* dataflow, uint32_t op_order, Callback callback);

  void Publish(Dataflow* dataflow, const Time& time, Batch<D>&& batch);

 private:
  struct Subscriber {
    uint32_t op_order;
    Callback callback;
  };
  // unique_ptr for address stability: scheduled events hold pointers to the
  // callback while later Subscribe calls may grow the vector.
  std::vector<std::unique_ptr<Subscriber>> subscribers_;
};

/// A lightweight handle to an operator's output. Copyable; valid as long as
/// the Dataflow lives. Fluent transformation methods are defined in
/// operators.h / join.h / reduce.h / iterate.h (include differential.h).
template <typename D>
class Stream {
 public:
  Stream() = default;
  Stream(Dataflow* dataflow, Publisher<D>* publisher)
      : dataflow_(dataflow), publisher_(publisher) {}

  Dataflow* dataflow() const { return dataflow_; }
  Publisher<D>* publisher() const { return publisher_; }
  bool valid() const { return publisher_ != nullptr; }

  // Fluent API (definitions in operators.h and friends).
  template <typename Fn>
  auto Map(Fn fn) const;  // Stream<result_of Fn(D)>
  template <typename Fn>
  Stream<D> Filter(Fn fn) const;
  template <typename Fn>
  auto FlatMap(Fn fn) const;  // Fn(D, std::vector<Out>*)
  Stream<D> Concat(Stream<D> other) const;
  Stream<D> Negate() const;
  Stream<D> InspectBatches(
      std::function<void(const Time&, const Batch<D>&)> fn) const;

 private:
  Dataflow* dataflow_ = nullptr;
  Publisher<D>* publisher_ = nullptr;
};

/// The dataflow graph plus its execution state.
///
/// A Dataflow is either standalone (the classic single-threaded engine) or
/// one worker shard of a ShardedDataflow (sharded.h). In the latter case it
/// carries its worker index and a pointer to the shared ExchangeHub, and
/// keyed operators splice exchange edges into the graph at construction
/// time. A shard's operators, scheduler, traces, and stats are only ever
/// touched by the one thread running the shard's current phase.
class Dataflow {
 public:
  explicit Dataflow(DataflowOptions options = DataflowOptions())
      : options_(options) {
    stats_.shard_work.assign(options_.num_workers, 0);
  }

  /// Worker-shard constructor, used by ShardedDataflow only.
  Dataflow(DataflowOptions options, ExchangeHub* hub, size_t worker_index)
      : options_(options), hub_(hub), worker_index_(worker_index) {
    stats_.shard_work.assign(options_.num_workers, 0);
  }

  Dataflow(const Dataflow&) = delete;
  Dataflow& operator=(const Dataflow&) = delete;

  const DataflowOptions& options() const { return options_; }
  Scheduler& scheduler() { return scheduler_; }
  DataflowStats& stats() { return stats_; }
  const DataflowStats& stats() const { return stats_; }

  // --- Sharded execution wiring (see exchange.h / sharded.h) --------------

  /// True when this dataflow is a shard of a multi-worker run and keyed
  /// operators must repartition their input by key hash.
  bool sharded() const { return hub_ != nullptr && options_.num_workers > 1; }
  ExchangeHub* exchange_hub() const { return hub_; }
  size_t worker_index() const { return worker_index_; }

  /// Exchange channel ids. Worker shards are built by running the same
  /// deterministic builder once per shard, so the n-th allocation on every
  /// shard refers to the same logical exchange edge.
  uint32_t AllocateExchangeChannel() { return next_exchange_channel_++; }

  /// Exchange endpoints register a drainer that moves cross-worker batches
  /// from their mutex-protected inbox into the operator's input port.
  void RegisterInboxDrainer(std::function<bool()> drainer) {
    inbox_drainers_.push_back(std::move(drainer));
  }

  /// Delivers all pending cross-worker batches. Returns true if anything
  /// was delivered (i.e. the scheduler may have new work). Wall time spent
  /// here accumulates into the exchange-drain attribution bucket; a shard
  /// with no exchange endpoints (serial execution) reports exactly zero.
  bool DrainExchangeInboxes() {
    if (inbox_drainers_.empty()) return false;
    Timer timer;
    bool any = false;
    for (auto& drain : inbox_drainers_) any = drain() || any;
    drain_nanos_ += static_cast<uint64_t>(timer.Nanos());
    return any;
  }

  /// Returns and resets the wall time spent in DrainExchangeInboxes since
  /// the last call (the sharded driver folds it into the per-worker
  /// exchange-drain state; see common/sched_profile.h).
  uint64_t TakeDrainNanos() {
    uint64_t nanos = drain_nanos_;
    drain_nanos_ = 0;
    return nanos;
  }

  /// Constructs and takes ownership of an operator.
  template <typename Op, typename... Args>
  Op* AddOperator(Args&&... args) {
    auto op = std::make_unique<Op>(this, std::forward<Args>(args)...);
    Op* raw = op.get();
    operators_.push_back(std::move(op));
    return raw;
  }

  uint32_t RegisterOperator(OperatorBase* op) {
    registered_.push_back(op);
    return static_cast<uint32_t>(registered_.size() - 1);
  }

  // --- Graph topology (construction-time only; safe to read at scrape) ----

  /// Records `owner` (an operator order) as the producer behind `publisher`.
  void NotePublisher(const void* publisher, uint32_t owner) {
    publisher_owner_[publisher] = owner;
  }
  /// Records a subscription of operator `consumer` to `publisher`.
  void NoteSubscription(const void* publisher, uint32_t consumer) {
    subscriptions_.emplace_back(publisher, consumer);
  }

  /// Resolved (producer order, consumer order) channels, deduplicated.
  /// Subscriptions whose publisher was never registered through
  /// RegisterOutput (none in-tree) are dropped.
  std::vector<std::pair<uint32_t, uint32_t>> GraphEdges() const {
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    edges.reserve(subscriptions_.size());
    for (const auto& [publisher, consumer] : subscriptions_) {
      auto it = publisher_owner_.find(publisher);
      if (it != publisher_owner_.end()) {
        edges.emplace_back(it->second, consumer);
      }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    return edges;
  }

  /// Point-in-time per-operator introspection record (see
  /// CollectOperatorSnapshots).
  struct OperatorSnapshot {
    uint32_t order = 0;
    std::string name;
    OperatorMemory memory;
    uint64_t total_run_nanos = 0;
  };

  /// Collects one snapshot per operator. Must run on the thread that owns
  /// this shard's phase (ShardedDataflow calls it after the SealPhase
  /// barrier); the result is plain data, safe to hand to a scrape thread.
  std::vector<OperatorSnapshot> CollectOperatorSnapshots() const {
    std::vector<OperatorSnapshot> snapshots;
    snapshots.reserve(registered_.size());
    for (const OperatorBase* op : registered_) {
      OperatorSnapshot snap;
      snap.order = op->order();
      snap.name = op->name();
      op->CollectMemory(&snap.memory);
      snap.total_run_nanos = op->total_run_nanos();
      snapshots.push_back(std::move(snap));
    }
    return snapshots;
  }

  /// The version the next Step() will process.
  uint32_t current_version() const { return version_; }

  /// Flushes all input buffers at the current version, runs the scheduler
  /// to quiescence (the differential fixpoint), seals the version, and
  /// advances. Returns an error if the event cap is exceeded.
  ///
  /// Standalone drivers call Step(); ShardedDataflow instead invokes the
  /// three phases below directly with barriers in between, repeating
  /// RunPhase until every shard and exchange queue is quiescent.
  Status Step() {
    BeginStepPhase();
    GS_RETURN_IF_ERROR(RunPhase());
    SealPhase();
    return Status::Ok();
  }

  /// Phase 1: flush input buffers at the current version (OnStepBegin).
  void BeginStepPhase() {
    // The flush span makes input publication visible to the critical-path
    // extractor (critical_path.h): at W == 1 the op/flush/seal spans
    // together cover essentially the whole step.
    GS_TRACE_SPAN_V("engine", "flush", version_);
    step_start_events_ = scheduler_.events_processed();
    for (OperatorBase* op : registered_) {
      Timer timer;
      op->OnStepBegin(version_);
      op->AddRunNanos(static_cast<uint64_t>(timer.Nanos()));
    }
  }

  /// Phase 2 (standalone / single worker): deliver pending exchange batches
  /// and run the local scheduler until both are exhausted.
  Status RunPhase() {
    for (;;) {
      bool delivered = DrainExchangeInboxes();
      if (!delivered && scheduler_.empty()) break;
      while (scheduler_.RunOne()) {
        GS_RETURN_IF_ERROR(CheckEventCap());
      }
    }
    return Status::Ok();
  }

  /// Phase 2 (sharded): run only events at times ≤ `frontier` (lex),
  /// re-draining exchange inboxes as peers deliver concurrently. The
  /// sharded driver computes `frontier` as the global minimum pending time
  /// each round, so no shard speculates past the frontier into loop
  /// iterations whose cross-shard input has not arrived — optimistic
  /// execution there would converge to the same result, but only after
  /// avalanches of corrections that destroy work-efficiency.
  Status RunBoundedPhase(const Time& frontier) {
    for (;;) {
      bool delivered = DrainExchangeInboxes();
      bool ran = false;
      while (!scheduler_.empty() &&
             !frontier.LexLess(scheduler_.PeekKey().time)) {
        scheduler_.RunOne();
        ran = true;
        GS_RETURN_IF_ERROR(CheckEventCap());
      }
      if (!delivered && !ran) break;
    }
    return Status::Ok();
  }

  /// Earliest pending local event time; only valid when HasPendingWork().
  bool HasPendingWork() const { return !scheduler_.empty(); }
  const Time& MinPendingTime() const { return scheduler_.PeekKey().time; }

  /// Phase 3: seal the version (trace compaction) and advance.
  void SealPhase() {
    GS_TRACE_SPAN_V("engine", "seal", version_);
    for (OperatorBase* op : registered_) {
      Timer timer;
      op->OnVersionSealed(version_);
      op->AddRunNanos(static_cast<uint64_t>(timer.Nanos()));
      uint64_t nanos = op->TakeRunNanos();
      if (nanos != 0) {
        // Distinct keys per shard so ShardedDataflow::AggregatedStats keeps
        // the per-shard breakdown (see DataflowStats::NormalizeOpName).
        if (sharded()) {
          stats_.op_nanos[op->name() + "@" + std::to_string(worker_index_)] +=
              nanos;
        } else {
          stats_.op_nanos[op->name()] += nanos;
        }
      }
    }
    // The trace gauges, byte accounting, and cumulative spine counters are
    // re-collected post-compaction from every operator's CollectMemory, so
    // reset them first; per-arrangement registry gauges refresh alongside.
    stats_.trace_entries = 0;
    stats_.trace_spine_batches = 0;
    stats_.trace_bytes = 0;
    stats_.trace_high_water_bytes = 0;
    stats_.trace_reclaimed_bytes = 0;
    stats_.queued_update_bytes = 0;
    stats_.trace_spine_merges = 0;
    stats_.trace_compactions = 0;
    for (OperatorBase* op : registered_) {
      OperatorMemory memory;
      op->CollectMemory(&memory);
      stats_.trace_entries += memory.trace_entries;
      stats_.trace_spine_batches += memory.trace_batches;
      stats_.trace_bytes += memory.trace_bytes;
      stats_.trace_high_water_bytes += memory.trace_high_water_bytes;
      stats_.trace_reclaimed_bytes += memory.trace_reclaimed_bytes;
      stats_.queued_update_bytes += memory.queued_bytes;
      stats_.trace_spine_merges += memory.trace_merges;
      stats_.trace_compactions += memory.trace_compactions;
      op->UpdateMemoryGauges(memory);
    }
    // Registry writes happen only here (per version, not per event), so the
    // hot scheduler loop stays metrics-free.
    static metrics::Counter* versions_sealed =
        metrics::Registry::Global().GetCounter("gs_engine_versions_sealed");
    static metrics::Histogram* version_events =
        metrics::Registry::Global().GetHistogram("gs_engine_version_events");
    versions_sealed->Increment();
    version_events->Observe(scheduler_.events_processed() -
                            step_start_events_);
    ++version_;
  }

  /// Seals a graph-update epoch after its last version was stepped: invokes
  /// every operator's OnEpochSealed with the last sealed version, forcing
  /// full spine compaction. Called between Steps (never mid-phase) by the
  /// live view-collection driver; the epoch counter is only advanced here.
  void SealEpoch() {
    GS_CHECK(version_ > 0) << "SealEpoch before any Step";
    uint32_t last_version = version_ - 1;
    GS_TRACE_SPAN_V("engine", "seal_epoch", last_version);
    for (OperatorBase* op : registered_) {
      Timer timer;
      op->OnEpochSealed(last_version);
      op->AddRunNanos(static_cast<uint64_t>(timer.Nanos()));
      uint64_t nanos = op->TakeRunNanos();
      if (nanos != 0) {
        if (sharded()) {
          stats_.op_nanos[op->name() + "@" + std::to_string(worker_index_)] +=
              nanos;
        } else {
          stats_.op_nanos[op->name()] += nanos;
        }
      }
    }
    ++epochs_sealed_;
    static metrics::Counter* epochs_sealed =
        metrics::Registry::Global().GetCounter("gs_engine_epochs_sealed");
    epochs_sealed->Increment();
  }

  /// Graph-update epochs sealed so far on this shard.
  uint64_t epochs_sealed() const { return epochs_sealed_; }

  size_t num_operators() const { return registered_.size(); }

 private:
  Status CheckEventCap() const {
    if (scheduler_.events_processed() - step_start_events_ >
        options_.max_events_per_version) {
      return Status::Internal(
          "event cap exceeded at version " + std::to_string(version_) +
          " — computation may not converge");
    }
    // Fault-injection hook (fuzz_hooks.h): simulate a mid-run resource
    // failure through the same clean Status path as the event cap. The
    // fuzzer asserts teardown leaks nothing and a retry succeeds.
    const fuzz::Hooks& fz = fuzz::GlobalHooks();
    if (fz.fail_after_events != 0 &&
        scheduler_.events_processed() - step_start_events_ >=
            fz.fail_after_events) {
      return Status::Internal(
          "injected allocation failure after " +
          std::to_string(fz.fail_after_events) + " events at version " +
          std::to_string(version_));
    }
    return Status::Ok();
  }

  DataflowOptions options_;
  ExchangeHub* hub_ = nullptr;
  size_t worker_index_ = 0;
  uint32_t next_exchange_channel_ = 0;
  uint64_t drain_nanos_ = 0;
  std::vector<std::function<bool()>> inbox_drainers_;
  std::map<const void*, uint32_t> publisher_owner_;
  std::vector<std::pair<const void*, uint32_t>> subscriptions_;
  Scheduler scheduler_;
  DataflowStats stats_;
  std::vector<std::unique_ptr<OperatorBase>> operators_;
  std::vector<OperatorBase*> registered_;
  uint32_t version_ = 0;
  uint64_t step_start_events_ = 0;
  uint64_t epochs_sealed_ = 0;
};

inline OperatorBase::OperatorBase(Dataflow* dataflow, std::string name)
    : dataflow_(dataflow), name_(std::move(name)) {
  order_ = dataflow->RegisterOperator(this);
}

inline OperatorBase::~OperatorBase() {
  // Zero the live gauges so a torn-down dataflow stops claiming resident
  // memory (satellite invariant: gauges return to zero after teardown).
  // High-water and reclaimed are historical marks and are left standing.
  if (gauges_.bytes != nullptr) gauges_.bytes->Set(0);
  if (gauges_.batches != nullptr) gauges_.batches->Set(0);
}

inline void OperatorBase::RegisterOutput(const void* publisher) {
  dataflow_->NotePublisher(publisher, order_);
}

inline void OperatorBase::UpdateMemoryGauges(const OperatorMemory& memory) {
  if (gauges_.bytes == nullptr) {
    // Linear operators never own a trace; don't pollute the registry with
    // permanently-zero gauge series for them.
    if (memory.trace_high_water_bytes == 0 && memory.trace_batches == 0) {
      return;
    }
    metrics::Registry& registry = metrics::Registry::Global();
    metrics::Registry::Labels labels{
        {"op", name_},
        {"shard", std::to_string(dataflow_->worker_index())},
        {"slot", std::to_string(order_)}};
    gauges_.bytes = registry.GetGauge("gs_arrangement_bytes", labels);
    gauges_.batches = registry.GetGauge("gs_arrangement_batches", labels);
    gauges_.high_water =
        registry.GetGauge("gs_arrangement_bytes_high_water", labels);
    gauges_.reclaimed =
        registry.GetGauge("gs_arrangement_bytes_reclaimed", labels);
  }
  gauges_.bytes->Set(static_cast<int64_t>(memory.trace_bytes));
  gauges_.batches->Set(static_cast<int64_t>(memory.trace_batches));
  gauges_.high_water->Set(static_cast<int64_t>(memory.trace_high_water_bytes));
  gauges_.reclaimed->Set(static_cast<int64_t>(memory.trace_reclaimed_bytes));
}

template <typename D>
void Publisher<D>::Subscribe(Dataflow* dataflow, uint32_t op_order,
                             Callback callback) {
  dataflow->NoteSubscription(this, op_order);
  subscribers_.push_back(
      std::make_unique<Subscriber>(Subscriber{op_order, std::move(callback)}));
}

inline void OperatorBase::RequestRun(const Time& time) {
  if (!run_pending_.insert(time).second) return;
  dataflow_->scheduler().Schedule(time, order_, [this, time] {
    run_pending_.erase(time);
    GS_TRACE_SPAN_V("op", name_, time.version);
    Timer timer;
    RunAt(time);
    run_nanos_ += static_cast<uint64_t>(timer.Nanos());
  });
}

template <typename D>
void Publisher<D>::Publish(Dataflow* dataflow, const Time& time,
                           Batch<D>&& batch) {
  // Empty batches publish nothing and count nothing: no stats, no subscriber
  // callbacks, no downstream RunAt scheduling. Checked both before and after
  // consolidation (a batch of cancelling diffs consolidates to empty).
  if (batch.empty() || subscribers_.empty()) return;
  Consolidate(&batch);
  if (batch.empty()) return;
  dataflow->stats().updates_published += batch.size();
  dataflow->stats().batches_published += 1;
  // Synchronous fan-out: linear subscribers process (and re-publish)
  // immediately; stateful subscribers buffer into an InputPort and schedule
  // a RunAt through the scheduler.
  for (const auto& sub : subscribers_) {
    sub->callback(time, batch);
  }
}

/// An input: buffers updates between Steps and publishes them as one batch
/// at the version being stepped.
template <typename D>
class InputOp : public OperatorBase {
 public:
  explicit InputOp(Dataflow* dataflow) : OperatorBase(dataflow, "input") {
    RegisterOutput(&output_);
  }

  /// Buffers an update for the next Step().
  void Send(D data, Diff diff) {
    buffer_.push_back(Update<D>{std::move(data), diff});
  }
  void SendBatch(Batch<D> batch) {
    buffer_.insert(buffer_.end(), std::make_move_iterator(batch.begin()),
                   std::make_move_iterator(batch.end()));
  }

  void OnStepBegin(uint32_t version) override {
    output_.Publish(dataflow_, Time(version), std::move(buffer_));
    buffer_.clear();
  }

  Stream<D> stream() { return Stream<D>(dataflow_, &output_); }

 private:
  Publisher<D> output_;
  Batch<D> buffer_;
};

/// Convenience holder pairing a Dataflow with a new input operator.
template <typename D>
class Input {
 public:
  explicit Input(Dataflow* dataflow)
      : op_(dataflow->AddOperator<InputOp<D>>()) {}

  void Send(D data, Diff diff = 1) { op_->Send(std::move(data), diff); }
  void SendBatch(Batch<D> batch) { op_->SendBatch(std::move(batch)); }
  Stream<D> stream() const { return op_->stream(); }

 private:
  InputOp<D>* op_;
};

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_DATAFLOW_H_
