// Dataflow construction and execution: operators, publishers, streams, and
// the per-version driver loop. See DESIGN.md §3 for the execution model.
//
// Usage sketch (Bellman-Ford-like):
//
//   Dataflow df;
//   auto edges = df.NewInput<WeightedEdge>();
//   auto roots = df.NewInput<std::pair<VertexId, int64_t>>();
//   auto dists = Iterate<std::pair<VertexId, int64_t>>(
//       roots.stream(), [&](LoopScope& scope, auto inner) {
//         auto e = scope.Enter(edges.stream());
//         ...
//       });
//   auto capture = Capture(dists);
//   edges.Send(...); roots.Send(...);
//   df.Step();   // version 0 to fixpoint
//   edges.Send(...);  // differences only
//   df.Step();   // version 1 shares computation
#ifndef GRAPHSURGE_DIFFERENTIAL_DATAFLOW_H_
#define GRAPHSURGE_DIFFERENTIAL_DATAFLOW_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "differential/scheduler.h"
#include "differential/time.h"
#include "differential/update.h"

namespace gs::differential {

class Dataflow;

/// Execution parameters.
struct DataflowOptions {
  /// Shard count for keyed operators (join/reduce); 1 = serial. Mirrors
  /// Timely worker parallelism in-process.
  size_t num_workers = 1;
  /// Safety cap on events processed within one version (divergence guard).
  uint64_t max_events_per_version = 1ull << 34;
  /// Default cap on loop iterations (Iterate may override per-scope).
  uint32_t max_iterations = 1u << 20;
};

/// Aggregate counters. `updates_published` is the engine's measure of work
/// performed; the scalability bench derives modeled critical-path time from
/// the per-shard breakdown kept by keyed operators.
struct DataflowStats {
  uint64_t updates_published = 0;
  uint64_t join_matches = 0;
  uint64_t reduce_evaluations = 0;
  uint64_t batches_published = 0;
  /// Work attributed to each key shard (hash(key) % num_workers) by keyed
  /// operators. The scalability bench derives the modeled critical-path
  /// time of a W-worker run as max(shard_work) / mean(shard_work).
  std::vector<uint64_t> shard_work;

  void AddShardWork(uint64_t key_hash, uint64_t amount) {
    if (!shard_work.empty()) {
      shard_work[key_hash % shard_work.size()] += amount;
    }
  }
};

/// Base class of all operators; concrete operators are created through
/// Dataflow::AddOperator and owned by the Dataflow.
///
/// Delivery model: linear (stateless) operators run synchronously inside
/// Publisher::Publish. Stateful operators (join, reduce, scope egress)
/// instead buffer incoming batches per timestamp in InputPorts and call
/// RequestRun(t); the scheduler then invokes RunAt(t) exactly once per
/// pending (operator, time), which drains *all* buffered input at t
/// atomically. This per-timestamp atomicity mirrors DD's frontier-batched
/// operator execution and is essential: processing a retraction and its
/// matching re-assertion separately would send transient correction pairs
/// around feedback loops forever.
class OperatorBase {
 public:
  OperatorBase(Dataflow* dataflow, std::string name);
  virtual ~OperatorBase() = default;

  uint32_t order() const { return order_; }
  const std::string& name() const { return name_; }

  /// Hook called when Step() begins (inputs flush their buffers here).
  virtual void OnStepBegin(uint32_t version) {}
  /// Hook called after a version reaches quiescence (traces compact here).
  virtual void OnVersionSealed(uint32_t version) {}

 protected:
  /// Schedules RunAt(t) unless one is already pending for t.
  void RequestRun(const Time& time);

  /// Stateful operators override this to drain their ports at `time`.
  virtual void RunAt(const Time& time) {}

  Dataflow* dataflow_;

 private:
  uint32_t order_ = 0;
  std::string name_;
  std::set<Time, TimeLexLess> run_pending_;
};

/// A per-timestamp input buffer for stateful operators.
template <typename D>
class InputPort {
 public:
  void Append(const Time& time, const Batch<D>& batch) {
    Batch<D>& pending = buffers_[time];
    pending.insert(pending.end(), batch.begin(), batch.end());
  }

  /// Removes and returns the (consolidated) buffered batch at `time`.
  Batch<D> Take(const Time& time) {
    auto it = buffers_.find(time);
    if (it == buffers_.end()) return {};
    Batch<D> batch = std::move(it->second);
    buffers_.erase(it);
    Consolidate(&batch);
    return batch;
  }

 private:
  std::map<Time, Batch<D>, TimeLexLess> buffers_;
};

/// Fan-out point owned by a producing operator. Publishing consolidates the
/// batch and schedules one delivery event per subscriber.
template <typename D>
class Publisher {
 public:
  using Callback = std::function<void(const Time&, const Batch<D>&)>;

  void Subscribe(uint32_t op_order, Callback callback) {
    subscribers_.push_back(
        std::make_unique<Subscriber>(Subscriber{op_order, std::move(callback)}));
  }

  void Publish(Dataflow* dataflow, const Time& time, Batch<D>&& batch);

 private:
  struct Subscriber {
    uint32_t op_order;
    Callback callback;
  };
  // unique_ptr for address stability: scheduled events hold pointers to the
  // callback while later Subscribe calls may grow the vector.
  std::vector<std::unique_ptr<Subscriber>> subscribers_;
};

/// A lightweight handle to an operator's output. Copyable; valid as long as
/// the Dataflow lives. Fluent transformation methods are defined in
/// operators.h / join.h / reduce.h / iterate.h (include differential.h).
template <typename D>
class Stream {
 public:
  Stream() = default;
  Stream(Dataflow* dataflow, Publisher<D>* publisher)
      : dataflow_(dataflow), publisher_(publisher) {}

  Dataflow* dataflow() const { return dataflow_; }
  Publisher<D>* publisher() const { return publisher_; }
  bool valid() const { return publisher_ != nullptr; }

  // Fluent API (definitions in operators.h and friends).
  template <typename Fn>
  auto Map(Fn fn) const;  // Stream<result_of Fn(D)>
  template <typename Fn>
  Stream<D> Filter(Fn fn) const;
  template <typename Fn>
  auto FlatMap(Fn fn) const;  // Fn(D, std::vector<Out>*)
  Stream<D> Concat(Stream<D> other) const;
  Stream<D> Negate() const;
  Stream<D> InspectBatches(
      std::function<void(const Time&, const Batch<D>&)> fn) const;

 private:
  Dataflow* dataflow_ = nullptr;
  Publisher<D>* publisher_ = nullptr;
};

/// The dataflow graph plus its execution state.
class Dataflow {
 public:
  explicit Dataflow(DataflowOptions options = DataflowOptions())
      : options_(options) {
    stats_.shard_work.assign(options_.num_workers, 0);
  }

  Dataflow(const Dataflow&) = delete;
  Dataflow& operator=(const Dataflow&) = delete;

  const DataflowOptions& options() const { return options_; }
  Scheduler& scheduler() { return scheduler_; }
  DataflowStats& stats() { return stats_; }
  const DataflowStats& stats() const { return stats_; }

  /// Constructs and takes ownership of an operator.
  template <typename Op, typename... Args>
  Op* AddOperator(Args&&... args) {
    auto op = std::make_unique<Op>(this, std::forward<Args>(args)...);
    Op* raw = op.get();
    operators_.push_back(std::move(op));
    return raw;
  }

  uint32_t RegisterOperator(OperatorBase* op) {
    registered_.push_back(op);
    return static_cast<uint32_t>(registered_.size() - 1);
  }

  /// The version the next Step() will process.
  uint32_t current_version() const { return version_; }

  /// Flushes all input buffers at the current version, runs the scheduler
  /// to quiescence (the differential fixpoint), seals the version, and
  /// advances. Returns an error if the event cap is exceeded.
  Status Step() {
    for (OperatorBase* op : registered_) op->OnStepBegin(version_);
    uint64_t start_events = scheduler_.events_processed();
    while (scheduler_.RunOne()) {
      if (scheduler_.events_processed() - start_events >
          options_.max_events_per_version) {
        return Status::Internal(
            "event cap exceeded at version " + std::to_string(version_) +
            " — computation may not converge");
      }
    }
    for (OperatorBase* op : registered_) op->OnVersionSealed(version_);
    ++version_;
    return Status::Ok();
  }

  size_t num_operators() const { return registered_.size(); }

 private:
  DataflowOptions options_;
  Scheduler scheduler_;
  DataflowStats stats_;
  std::vector<std::unique_ptr<OperatorBase>> operators_;
  std::vector<OperatorBase*> registered_;
  uint32_t version_ = 0;
};

inline OperatorBase::OperatorBase(Dataflow* dataflow, std::string name)
    : dataflow_(dataflow), name_(std::move(name)) {
  order_ = dataflow->RegisterOperator(this);
}

inline void OperatorBase::RequestRun(const Time& time) {
  if (!run_pending_.insert(time).second) return;
  dataflow_->scheduler().Schedule(time, order_, [this, time] {
    run_pending_.erase(time);
    RunAt(time);
  });
}

template <typename D>
void Publisher<D>::Publish(Dataflow* dataflow, const Time& time,
                           Batch<D>&& batch) {
  Consolidate(&batch);
  if (batch.empty() || subscribers_.empty()) return;
  dataflow->stats().updates_published += batch.size();
  dataflow->stats().batches_published += 1;
  // Synchronous fan-out: linear subscribers process (and re-publish)
  // immediately; stateful subscribers buffer into an InputPort and schedule
  // a RunAt through the scheduler.
  for (const auto& sub : subscribers_) {
    sub->callback(time, batch);
  }
}

/// An input: buffers updates between Steps and publishes them as one batch
/// at the version being stepped.
template <typename D>
class InputOp : public OperatorBase {
 public:
  explicit InputOp(Dataflow* dataflow) : OperatorBase(dataflow, "input") {}

  /// Buffers an update for the next Step().
  void Send(D data, Diff diff) {
    buffer_.push_back(Update<D>{std::move(data), diff});
  }
  void SendBatch(Batch<D> batch) {
    buffer_.insert(buffer_.end(), std::make_move_iterator(batch.begin()),
                   std::make_move_iterator(batch.end()));
  }

  void OnStepBegin(uint32_t version) override {
    output_.Publish(dataflow_, Time(version), std::move(buffer_));
    buffer_.clear();
  }

  Stream<D> stream() { return Stream<D>(dataflow_, &output_); }

 private:
  Publisher<D> output_;
  Batch<D> buffer_;
};

/// Convenience holder pairing a Dataflow with a new input operator.
template <typename D>
class Input {
 public:
  explicit Input(Dataflow* dataflow)
      : op_(dataflow->AddOperator<InputOp<D>>()) {}

  void Send(D data, Diff diff = 1) { op_->Send(std::move(data), diff); }
  void SendBatch(Batch<D> batch) { op_->SendBatch(std::move(batch)); }
  Stream<D> stream() const { return op_->stream(); }

 private:
  InputOp<D>* op_;
};

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_DATAFLOW_H_
