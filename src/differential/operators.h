// Linear (stateless) operators and the Capture sink.
#ifndef GRAPHSURGE_DIFFERENTIAL_OPERATORS_H_
#define GRAPHSURGE_DIFFERENTIAL_OPERATORS_H_

#include <map>
#include <type_traits>
#include <vector>

#include "differential/dataflow.h"

namespace gs::differential {

template <typename In, typename Out, typename Fn>
class MapOp : public OperatorBase {
 public:
  MapOp(Dataflow* dataflow, Stream<In> in, Fn fn)
      : OperatorBase(dataflow, "map"), fn_(std::move(fn)) {
    RegisterOutput(&output_);
    in.publisher()->Subscribe(dataflow, order(),
                              [this](const Time& t, const Batch<In>& b) {
                                OnInput(t, b);
                              });
  }

  Stream<Out> stream() { return Stream<Out>(dataflow_, &output_); }

 private:
  void OnInput(const Time& time, const Batch<In>& batch) {
    Batch<Out> out;
    out.reserve(batch.size());
    for (const Update<In>& u : batch) {
      out.push_back(Update<Out>{fn_(u.data), u.diff});
    }
    output_.Publish(dataflow_, time, std::move(out));
  }

  Fn fn_;
  Publisher<Out> output_;
};

template <typename D, typename Fn>
class FilterOp : public OperatorBase {
 public:
  FilterOp(Dataflow* dataflow, Stream<D> in, Fn fn)
      : OperatorBase(dataflow, "filter"), fn_(std::move(fn)) {
    RegisterOutput(&output_);
    in.publisher()->Subscribe(dataflow, order(),
                              [this](const Time& t, const Batch<D>& b) {
                                OnInput(t, b);
                              });
  }

  Stream<D> stream() { return Stream<D>(dataflow_, &output_); }

 private:
  void OnInput(const Time& time, const Batch<D>& batch) {
    Batch<D> out;
    for (const Update<D>& u : batch) {
      if (fn_(u.data)) out.push_back(u);
    }
    output_.Publish(dataflow_, time, std::move(out));
  }

  Fn fn_;
  Publisher<D> output_;
};

/// Fn has signature void(const In&, std::vector<Out>*): it appends zero or
/// more output records per input record; each inherits the input's diff.
template <typename In, typename Out, typename Fn>
class FlatMapOp : public OperatorBase {
 public:
  FlatMapOp(Dataflow* dataflow, Stream<In> in, Fn fn)
      : OperatorBase(dataflow, "flat_map"), fn_(std::move(fn)) {
    RegisterOutput(&output_);
    in.publisher()->Subscribe(dataflow, order(),
                              [this](const Time& t, const Batch<In>& b) {
                                OnInput(t, b);
                              });
  }

  Stream<Out> stream() { return Stream<Out>(dataflow_, &output_); }

 private:
  void OnInput(const Time& time, const Batch<In>& batch) {
    Batch<Out> out;
    std::vector<Out> scratch;
    for (const Update<In>& u : batch) {
      scratch.clear();
      fn_(u.data, &scratch);
      for (Out& o : scratch) {
        out.push_back(Update<Out>{std::move(o), u.diff});
      }
    }
    output_.Publish(dataflow_, time, std::move(out));
  }

  Fn fn_;
  Publisher<Out> output_;
};

template <typename D>
class ConcatOp : public OperatorBase {
 public:
  ConcatOp(Dataflow* dataflow, Stream<D> a, Stream<D> b)
      : OperatorBase(dataflow, "concat") {
    auto forward = [this](const Time& t, const Batch<D>& batch) {
      Batch<D> copy = batch;
      output_.Publish(dataflow_, t, std::move(copy));
    };
    RegisterOutput(&output_);
    a.publisher()->Subscribe(dataflow, order(), forward);
    b.publisher()->Subscribe(dataflow, order(), forward);
  }

  Stream<D> stream() { return Stream<D>(dataflow_, &output_); }

 private:
  Publisher<D> output_;
};

template <typename D>
class NegateOp : public OperatorBase {
 public:
  NegateOp(Dataflow* dataflow, Stream<D> in)
      : OperatorBase(dataflow, "negate") {
    RegisterOutput(&output_);
    in.publisher()->Subscribe(dataflow, order(),
                              [this](const Time& t, const Batch<D>& b) {
                                Batch<D> out = b;
                                for (Update<D>& u : out) u.diff = -u.diff;
                                output_.Publish(dataflow_, t, std::move(out));
                              });
  }

  Stream<D> stream() { return Stream<D>(dataflow_, &output_); }

 private:
  Publisher<D> output_;
};

/// Pass-through that invokes a callback on every batch (debugging, traces).
template <typename D>
class InspectOp : public OperatorBase {
 public:
  InspectOp(Dataflow* dataflow, Stream<D> in,
            std::function<void(const Time&, const Batch<D>&)> fn)
      : OperatorBase(dataflow, "inspect"), fn_(std::move(fn)) {
    RegisterOutput(&output_);
    in.publisher()->Subscribe(dataflow, order(),
                              [this](const Time& t, const Batch<D>& b) {
                                fn_(t, b);
                                Batch<D> copy = b;
                                output_.Publish(dataflow_, t, std::move(copy));
                              });
  }

  Stream<D> stream() { return Stream<D>(dataflow_, &output_); }

 private:
  std::function<void(const Time&, const Batch<D>&)> fn_;
  Publisher<D> output_;
};

/// Terminal sink collecting output difference sets per version. Must be
/// attached outside all Iterate scopes (depth-0 times).
template <typename D>
class CaptureOp : public OperatorBase {
 public:
  CaptureOp(Dataflow* dataflow, Stream<D> in)
      : OperatorBase(dataflow, "capture") {
    in.publisher()->Subscribe(dataflow, order(),
                              [this](const Time& t, const Batch<D>& b) {
                                GS_CHECK(t.depth == 0)
                                    << "Capture inside a loop scope";
                                Batch<D>& sink = versions_[t.version];
                                sink.insert(sink.end(), b.begin(), b.end());
                              });
  }

  void OnVersionSealed(uint32_t version) override {
    auto it = versions_.find(version);
    if (it != versions_.end()) Consolidate(&it->second);
  }

  /// Difference set of `version` (empty if no change).
  Batch<D> VersionDiffs(uint32_t version) const {
    auto it = versions_.find(version);
    if (it == versions_.end()) return {};
    Batch<D> b = it->second;
    Consolidate(&b);
    return b;
  }

  /// Accumulated collection contents at `version` (sum of diffs ≤ version).
  Batch<D> AccumulatedAt(uint32_t version) const {
    Batch<D> all;
    for (const auto& [v, batch] : versions_) {
      if (v > version) break;
      all.insert(all.end(), batch.begin(), batch.end());
    }
    Consolidate(&all);
    return all;
  }

  const std::map<uint32_t, Batch<D>>& versions() const { return versions_; }

 private:
  std::map<uint32_t, Batch<D>> versions_;
};

// ---------------------------------------------------------------------------
// Fluent Stream methods and free-function spellings.

template <typename D>
template <typename Fn>
auto Stream<D>::Map(Fn fn) const {
  using Out = std::decay_t<decltype(fn(std::declval<const D&>()))>;
  auto* op = dataflow_->AddOperator<MapOp<D, Out, Fn>>(*this, std::move(fn));
  return op->stream();
}

template <typename D>
template <typename Fn>
Stream<D> Stream<D>::Filter(Fn fn) const {
  auto* op = dataflow_->AddOperator<FilterOp<D, Fn>>(*this, std::move(fn));
  return op->stream();
}

template <typename D>
template <typename Fn>
auto Stream<D>::FlatMap(Fn fn) const {
  // Deduce Out from the vector pointer parameter of Fn.
  using Traits = decltype(&Fn::operator());
  return FlatMapDeduce(*this, std::move(fn), Traits{});
}

// Helper deducing FlatMap's output type from Fn's second parameter.
template <typename D, typename Fn, typename C, typename In, typename Out>
auto FlatMapDeduce(const Stream<D>& in, Fn fn,
                   void (C::*)(In, std::vector<Out>*) const) {
  auto* op =
      in.dataflow()->template AddOperator<FlatMapOp<D, Out, Fn>>(in,
                                                                 std::move(fn));
  return op->stream();
}

template <typename D>
Stream<D> Stream<D>::Concat(Stream<D> other) const {
  auto* op = dataflow_->AddOperator<ConcatOp<D>>(*this, other);
  return op->stream();
}

template <typename D>
Stream<D> Stream<D>::Negate() const {
  auto* op = dataflow_->AddOperator<NegateOp<D>>(*this);
  return op->stream();
}

template <typename D>
Stream<D> Stream<D>::InspectBatches(
    std::function<void(const Time&, const Batch<D>&)> fn) const {
  auto* op = dataflow_->AddOperator<InspectOp<D>>(*this, std::move(fn));
  return op->stream();
}

/// Attaches a capture sink and returns it (owned by the dataflow).
template <typename D>
CaptureOp<D>* Capture(Stream<D> stream) {
  return stream.dataflow()->template AddOperator<CaptureOp<D>>(stream);
}

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_OPERATORS_H_
