// Multi-worker sharded execution of a differential dataflow (timely-style
// data parallelism, in-process). A ShardedDataflow owns W worker shards —
// each a full Dataflow with its own Scheduler, operator instances, traces,
// and stats — built by running the same deterministic dataflow builder once
// per shard. Keyed operators repartition records by key hash through the
// shared ExchangeHub (exchange.h); everything else runs shard-locally.
//
// Progress protocol: Step() runs barrier-separated frontier rounds on a
// ThreadPool.
//   1. every shard flushes its inputs (OnStepBegin);
//   2. rounds: every shard first drains its exchange inboxes (so all
//      batches pushed in the previous round become scheduled events) and
//      reports its earliest pending event time; the lex-minimum over all
//      shards is the global frontier F. Each shard then runs only events
//      at times ≤ F, re-draining its inboxes as peers deliver more work at
//      F concurrently. When no shard reports pending work after a drain,
//      the version has reached global quiescence.
//   3. every shard seals the version (trace compaction) and advances.
// Restricting each round to the frontier is what makes sharded execution
// *work-efficient*, not just correct: without it a shard races ahead into
// loop iterations whose cross-shard input has not arrived, computes from
// partial data, and then pays for avalanches of corrections when late
// diffs land (measured 3-4x total event inflation on WCC). With it, every
// shard observes the complete input for iteration j before evaluating
// iteration j+1 — the in-process analog of timely's frontier notification.
// `iterate` scopes need no extra machinery: iteration coordinates travel
// with each batch, and lexicographic frontier order is a linear extension
// of the product order, so times are processed in a valid serial order and
// the consolidated per-version output is identical to single-worker runs.
#ifndef GRAPHSURGE_DIFFERENTIAL_SHARDED_H_
#define GRAPHSURGE_DIFFERENTIAL_SHARDED_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/introspect.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/sched_profile.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/trace_event.h"
#include "differential/dataflow.h"
#include "differential/exchange.h"
#include "differential/fuzz_hooks.h"

namespace gs::differential {

class ShardedDataflow {
 public:
  explicit ShardedDataflow(DataflowOptions options = DataflowOptions())
      : options_(FixupOptions(options)),
        hub_(std::make_unique<ExchangeHub>(options_.num_workers)),
        pool_(std::make_unique<ThreadPool>(options_.num_workers)) {
    workers_.reserve(options_.num_workers);
    for (size_t w = 0; w < options_.num_workers; ++w) {
      workers_.push_back(
          std::make_unique<Dataflow>(options_, hub_.get(), w));
    }
    // Register with the live-introspection registry so /statusz can render
    // this dataflow. The producer only copies the mutex-protected snapshot
    // refreshed at phase barriers, so a scrape never touches operator state.
    static std::atomic<uint64_t> next_instance{0};
    uint64_t instance = next_instance.fetch_add(1, std::memory_order_relaxed);
    // The time-attribution profile shares the introspect source's name, so
    // /workersz rows and /statusz sources line up one-to-one.
    profile_ = std::make_unique<sched::StepProfile>(
        "dataflow-" + std::to_string(instance), options_.num_workers);
    introspect_source_ = std::make_unique<introspect::ScopedSource>(
        "dataflow-" + std::to_string(instance),
        [this] { return RenderStatusJson(); });
  }

  ShardedDataflow(const ShardedDataflow&) = delete;
  ShardedDataflow& operator=(const ShardedDataflow&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Worker shard `w`. Graph builders must be applied to every shard, in
  /// the same order with the same operators (see exchange.h on channel
  /// identity).
  Dataflow* worker(size_t w) { return workers_[w].get(); }

  /// The worker owning key-hash `hash` — use to place input records so
  /// that seeding work is spread across shards.
  size_t OwnerOfHash(uint64_t hash) const { return hash % workers_.size(); }

  const DataflowOptions& options() const { return options_; }

  /// The version the next Step() will process (identical on all shards).
  uint32_t current_version() const { return workers_[0]->current_version(); }

  /// Runs all shards to the global differential fixpoint for the current
  /// version, then seals it everywhere. Single-worker instances degrade to
  /// exactly the serial engine (the pool runs inline, no exchange edges
  /// exist).
  Status Step() {
    const size_t w = num_workers();
    GS_TRACE_SPAN_V("engine", "step", current_version());
    // Open the attribution window: from here to StepEnd every nanosecond is
    // charged to exactly one of busy/exchange/barrier/seal/idle per worker
    // (see common/sched_profile.h for the tiling protocol).
    profile_->StepBegin(current_version());
    std::vector<Status> statuses(w, Status::Ok());
    std::vector<char> has_pending(w, 0);
    std::vector<Time> min_pending(w);
    {
      // Graph topology is construction-time state and the builder has run
      // by the first Step; capture it once. The small per-step fields are
      // refreshed under the same mutex the scrape producer takes.
      std::lock_guard<std::mutex> lock(status_mutex_);
      status_.version = current_version();
      status_.stepping = true;
      if (status_.edges.empty()) status_.edges = workers_[0]->GraphEdges();
    }
    profile_->BlockBegin();
    pool_->ParallelFor(w, [&](size_t i) {
      ScopedWorkerId tag(static_cast<int>(i));
      const uint64_t t0 = sched::ProfileNow();
      workers_[i]->BeginStepPhase();
      const uint64_t total = sched::ProfileNow() - t0;
      // TakeDrainNanos also clears residue from any out-of-step drains, so
      // the flush phase's attribution starts clean.
      const uint64_t drain = std::min(workers_[i]->TakeDrainNanos(), total);
      profile_->AddExchange(i, drain);
      profile_->AddBusy(i, total - drain);
    });
    profile_->BlockEnd();
    static metrics::Counter* frontier_rounds =
        metrics::Registry::Global().GetCounter("gs_engine_frontier_rounds");
    // Heartbeat gauge for the watchdog's frontier_stall rule: non-zero
    // while a round's pending work is known, cleared when the step ends.
    static metrics::Gauge* outstanding_gauge =
        metrics::Registry::Global().GetGauge("gs_engine_records_outstanding");
    bool stall_injected = false;
    for (;;) {
      // Drain-and-report phase. Every inbox is drained here, so after the
      // barrier nothing is in flight and the reported minima are complete:
      // all pending work in the system is visible in some shard's scheduler.
      profile_->BlockBegin();
      pool_->ParallelFor(w, [&](size_t i) {
        ScopedWorkerId tag(static_cast<int>(i));
        const uint64_t t0 = sched::ProfileNow();
        workers_[i]->DrainExchangeInboxes();
        has_pending[i] = workers_[i]->HasPendingWork() ? 1 : 0;
        if (has_pending[i]) min_pending[i] = workers_[i]->MinPendingTime();
        const uint64_t total = sched::ProfileNow() - t0;
        const uint64_t drain = std::min(workers_[i]->TakeDrainNanos(), total);
        profile_->AddExchange(i, drain);
        profile_->AddBusy(i, total - drain);
      });
      profile_->BlockEnd();
      GS_CHECK(hub_->in_flight() == 0)
          << "exchange batches still in flight after a full drain barrier";
      bool any = false;
      Time frontier;
      for (size_t i = 0; i < w; ++i) {
        if (!has_pending[i]) continue;
        if (!any || min_pending[i].LexLess(frontier)) frontier = min_pending[i];
        any = true;
      }
      if (!any) break;  // global quiescence
      frontier_rounds->Increment();
      {
        // Post-barrier: no shard is running, so the schedulers' pending
        // counts are stable — sum them as "records outstanding".
        uint64_t outstanding = 0;
        for (size_t i = 0; i < w; ++i) {
          outstanding += workers_[i]->scheduler().pending();
        }
        outstanding_gauge->Set(static_cast<int64_t>(outstanding));
        std::lock_guard<std::mutex> lock(status_mutex_);
        status_.frontier = frontier;
        status_.frontier_valid = true;
        status_.frontier_rounds += 1;
        status_.records_outstanding = outstanding;
      }
      if (fuzz::GlobalHooks().stall_frontier_ms != 0 && !stall_injected) {
        // Injected frontier stall (watchdog testing): hold the round open
        // with outstanding records published and the round counter static.
        // Once per Step so multi-version feeds don't multiply the delay.
        stall_injected = true;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fuzz::GlobalHooks().stall_frontier_ms));
      }
      if (trace::Enabled()) {
        // One instant event per frontier advance: which (version, iteration)
        // the fleet agreed to run next. Formatting only happens when a trace
        // is actually being recorded.
        char name[trace::kNameCapacity];
        std::snprintf(name, sizeof(name), "frontier v%u d%u i%u",
                      frontier.version,
                      static_cast<unsigned>(frontier.depth),
                      frontier.depth > 0 ? frontier.iters[0] : 0u);
        trace::AddInstantEvent("engine", name, frontier.version);
      }
      // Run phase, restricted to the frontier. At least the frontier event
      // itself is consumed, and every dataflow cycle passes through the
      // feedback edge's Delayed() hop, so each round makes progress and the
      // loop terminates.
      profile_->BlockBegin();
      pool_->ParallelFor(w, [&](size_t i) {
        ScopedWorkerId tag(static_cast<int>(i));
        const uint64_t t0 = sched::ProfileNow();
        statuses[i] = workers_[i]->RunBoundedPhase(frontier);
        const uint64_t total = sched::ProfileNow() - t0;
        const uint64_t drain = std::min(workers_[i]->TakeDrainNanos(), total);
        profile_->AddExchange(i, drain);
        profile_->AddBusy(i, total - drain);
      });
      profile_->BlockEnd();
      for (const Status& s : statuses) GS_RETURN_IF_ERROR(s);
    }
    profile_->BlockBegin();
    pool_->ParallelFor(w, [&](size_t i) {
      ScopedWorkerId tag(static_cast<int>(i));
      const uint64_t t0 = sched::ProfileNow();
      workers_[i]->SealPhase();
      profile_->AddSeal(i, sched::ProfileNow() - t0);
    });
    profile_->BlockEnd();
    // Post-seal barrier: every shard is idle, so per-operator memory and
    // timing snapshots can be collected without racing operator execution.
    {
      std::vector<ShardOperatorStatus> ops;
      for (size_t i = 0; i < w; ++i) {
        for (auto& snap : workers_[i]->CollectOperatorSnapshots()) {
          ops.push_back(ShardOperatorStatus{i, std::move(snap)});
        }
      }
      std::vector<uint64_t> events = PerWorkerEvents();
      std::lock_guard<std::mutex> lock(status_mutex_);
      status_.ops = std::move(ops);
      status_.per_worker_events = std::move(events);
      status_.version = current_version();
      status_.stepping = false;
      status_.frontier_valid = false;
      status_.records_outstanding = 0;
    }
    outstanding_gauge->Set(0);
    // Close the attribution window (the snapshot collection above lands in
    // the final idle gap) and feed the skew inputs collected post-barrier.
    profile_->StepEnd(CollectStepInputs());
    return Status::Ok();
  }

  /// Seals a graph-update epoch on every shard (full spine compaction; see
  /// Dataflow::SealEpoch). Call between Steps, after the last version of the
  /// epoch was stepped. The barrier semantics match SealPhase: no shard is
  /// running when this executes, and snapshots refresh afterwards.
  void SealEpoch() {
    // Epoch seals get their own attribution window (they run between Step
    // windows), so full-spine compaction shows up as seal time, not as a
    // mystery gap. An injected fuzz delay lands in the window's idle state.
    profile_->StepBegin(current_version());
    if (fuzz::GlobalHooks().delay_epoch_seal_ms != 0) {
      // Injected seal delay (watchdog testing): stretches AdvanceEpoch past
      // the epoch_advance_deadline without perturbing what is computed.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(fuzz::GlobalHooks().delay_epoch_seal_ms));
    }
    const size_t w = num_workers();
    profile_->BlockBegin();
    pool_->ParallelFor(w, [&](size_t i) {
      ScopedWorkerId tag(static_cast<int>(i));
      const uint64_t t0 = sched::ProfileNow();
      workers_[i]->SealEpoch();
      profile_->AddSeal(i, sched::ProfileNow() - t0);
    });
    profile_->BlockEnd();
    std::vector<ShardOperatorStatus> ops;
    for (size_t i = 0; i < w; ++i) {
      for (auto& snap : workers_[i]->CollectOperatorSnapshots()) {
        ops.push_back(ShardOperatorStatus{i, std::move(snap)});
      }
    }
    // The ingest-lag denominator: the watchdog compares this gauge to
    // gs_graph_epoch to see whether the engine keeps up with ingest.
    static metrics::Gauge* last_sealed =
        metrics::Registry::Global().GetGauge("gs_engine_last_sealed_epoch");
    last_sealed->Set(static_cast<int64_t>(workers_[0]->epochs_sealed()));
    {
      std::lock_guard<std::mutex> lock(status_mutex_);
      status_.ops = std::move(ops);
      status_.epochs_sealed = workers_[0]->epochs_sealed();
    }
    profile_->StepEnd(CollectStepInputs());
  }

  /// Graph-update epochs sealed so far (identical on all shards).
  uint64_t epochs_sealed() const { return workers_[0]->epochs_sealed(); }

  /// This dataflow's time-attribution profile (per-worker busy / exchange /
  /// barrier / seal / idle accounting, skew figures). Snapshot reads are
  /// safe from any thread.
  const sched::StepProfile& profile() const { return *profile_; }

  /// Sum of all shards' work counters (call between Steps).
  DataflowStats AggregatedStats() const {
    DataflowStats total;
    for (const auto& worker : workers_) total.Merge(worker->stats());
    return total;
  }

  /// Per-shard events processed so far — the measured (not modeled) work
  /// distribution; max/mean over shards bounds achievable speedup.
  std::vector<uint64_t> PerWorkerEvents() const {
    std::vector<uint64_t> events;
    events.reserve(workers_.size());
    for (const auto& worker : workers_) {
      events.push_back(worker->scheduler().events_processed());
    }
    return events;
  }

  /// Renders the current status snapshot as one JSON object: execution
  /// state (version, frontier, rounds, records outstanding), per-operator
  /// memory/timing attribution, the operator→operator channels, and a
  /// Graphviz DOT rendering of the worker-0 graph. Safe to call from any
  /// thread at any time — it only reads the snapshot refreshed at phase
  /// barriers.
  std::string RenderStatusJson() const {
    StatusSnapshot snap;
    {
      std::lock_guard<std::mutex> lock(status_mutex_);
      snap = status_;
    }
    std::string out = "{";
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "\"workers\": %zu, \"version\": %u, \"stepping\": %s",
                  workers_.size(), snap.version,
                  snap.stepping ? "true" : "false");
    out += buf;
    if (snap.frontier_valid) {
      std::snprintf(buf, sizeof(buf),
                    ", \"frontier\": {\"version\": %u, \"depth\": %u, "
                    "\"iter\": %u}",
                    snap.frontier.version,
                    static_cast<unsigned>(snap.frontier.depth),
                    snap.frontier.depth > 0 ? snap.frontier.iters[0] : 0u);
      out += buf;
    } else {
      out += ", \"frontier\": null";
    }
    std::snprintf(buf, sizeof(buf),
                  ", \"frontier_rounds\": %llu, "
                  "\"records_outstanding\": %llu, \"epochs_sealed\": %llu",
                  static_cast<unsigned long long>(snap.frontier_rounds),
                  static_cast<unsigned long long>(snap.records_outstanding),
                  static_cast<unsigned long long>(snap.epochs_sealed));
    out += buf;
    out += ", \"per_worker_events\": [";
    for (size_t i = 0; i < snap.per_worker_events.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(snap.per_worker_events[i]);
    }
    out += "], \"operators\": [";
    for (size_t i = 0; i < snap.ops.size(); ++i) {
      const ShardOperatorStatus& op = snap.ops[i];
      if (i) out += ", ";
      out += "{\"shard\": " + std::to_string(op.shard) +
             ", \"slot\": " + std::to_string(op.snap.order) + ", \"name\": \"" +
             introspect::JsonEscape(op.snap.name) + "\"";
      std::snprintf(
          buf, sizeof(buf),
          ", \"queued_bytes\": %llu, \"trace_bytes\": %llu, "
          "\"trace_batches\": %llu",
          static_cast<unsigned long long>(op.snap.memory.queued_bytes),
          static_cast<unsigned long long>(op.snap.memory.trace_bytes),
          static_cast<unsigned long long>(op.snap.memory.trace_batches));
      out += buf;
      std::snprintf(
          buf, sizeof(buf),
          ", \"trace_high_water_bytes\": %llu, "
          "\"trace_reclaimed_bytes\": %llu, \"run_nanos\": %llu}",
          static_cast<unsigned long long>(
              op.snap.memory.trace_high_water_bytes),
          static_cast<unsigned long long>(op.snap.memory.trace_reclaimed_bytes),
          static_cast<unsigned long long>(op.snap.total_run_nanos));
      out += buf;
    }
    out += "], \"channels\": [";
    for (size_t i = 0; i < snap.edges.size(); ++i) {
      if (i) out += ", ";
      out += "[" + std::to_string(snap.edges[i].first) + ", " +
             std::to_string(snap.edges[i].second) + "]";
    }
    out += "], \"dot\": \"" + introspect::JsonEscape(RenderDot(snap)) + "\"}";
    return out;
  }

 private:
  struct ShardOperatorStatus {
    size_t shard = 0;
    Dataflow::OperatorSnapshot snap;
  };

  /// Point-in-time execution state, refreshed at Step's phase barriers and
  /// copied (under status_mutex_) by the scrape producer.
  struct StatusSnapshot {
    uint32_t version = 0;
    bool stepping = false;
    bool frontier_valid = false;
    Time frontier;
    uint64_t frontier_rounds = 0;
    uint64_t records_outstanding = 0;
    uint64_t epochs_sealed = 0;
    std::vector<uint64_t> per_worker_events;
    std::vector<ShardOperatorStatus> ops;
    std::vector<std::pair<uint32_t, uint32_t>> edges;  // worker-0 topology
  };

  /// Graphviz digraph of the worker-0 operator graph, labeled with the
  /// latest memory attribution.
  static std::string RenderDot(const StatusSnapshot& snap) {
    std::string dot = "digraph dataflow {\n  rankdir=LR;\n";
    for (const ShardOperatorStatus& op : snap.ops) {
      if (op.shard != 0) continue;
      dot += "  n" + std::to_string(op.snap.order) + " [label=\"" +
             op.snap.name + " #" + std::to_string(op.snap.order);
      if (op.snap.memory.trace_bytes > 0) {
        dot += "\\n" + std::to_string(op.snap.memory.trace_bytes) + "B";
      }
      dot += "\"];\n";
    }
    for (const auto& [from, to] : snap.edges) {
      dot += "  n" + std::to_string(from) + " -> n" + std::to_string(to) +
             ";\n";
    }
    dot += "}\n";
    return dot;
  }

  static DataflowOptions FixupOptions(DataflowOptions options) {
    options.num_workers = std::max<size_t>(1, options.num_workers);
    return options;
  }

  /// Post-barrier skew/work inputs for StepProfile::StepEnd. Only called
  /// while no worker is running, so the schedulers and stats are stable.
  sched::StepInputs CollectStepInputs() {
    sched::StepInputs inputs;
    inputs.per_worker_events = PerWorkerEvents();
    inputs.per_worker_peak_pending.reserve(workers_.size());
    inputs.per_shard_records.assign(workers_.size(), 0);
    for (auto& worker : workers_) {
      inputs.per_worker_peak_pending.push_back(
          worker->scheduler().TakePeakPending());
      const std::vector<uint64_t>& work = worker->stats().shard_work;
      for (size_t s = 0; s < work.size() && s < inputs.per_shard_records.size();
           ++s) {
        inputs.per_shard_records[s] += work[s];
      }
    }
    inputs.exchange_batches = hub_->total_pushed();
    return inputs;
  }

  DataflowOptions options_;
  std::unique_ptr<ExchangeHub> hub_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Dataflow>> workers_;
  mutable std::mutex status_mutex_;
  StatusSnapshot status_;
  std::unique_ptr<sched::StepProfile> profile_;
  // Declared last: unregisters first on destruction, so no scrape can reach
  // a partially-destroyed dataflow.
  std::unique_ptr<introspect::ScopedSource> introspect_source_;
};

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_SHARDED_H_
