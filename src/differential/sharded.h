// Multi-worker sharded execution of a differential dataflow (timely-style
// data parallelism, in-process). A ShardedDataflow owns W worker shards —
// each a full Dataflow with its own Scheduler, operator instances, traces,
// and stats — built by running the same deterministic dataflow builder once
// per shard. Keyed operators repartition records by key hash through the
// shared ExchangeHub (exchange.h); everything else runs shard-locally.
//
// Progress protocol: Step() runs barrier-separated frontier rounds on a
// ThreadPool.
//   1. every shard flushes its inputs (OnStepBegin);
//   2. rounds: every shard first drains its exchange inboxes (so all
//      batches pushed in the previous round become scheduled events) and
//      reports its earliest pending event time; the lex-minimum over all
//      shards is the global frontier F. Each shard then runs only events
//      at times ≤ F, re-draining its inboxes as peers deliver more work at
//      F concurrently. When no shard reports pending work after a drain,
//      the version has reached global quiescence.
//   3. every shard seals the version (trace compaction) and advances.
// Restricting each round to the frontier is what makes sharded execution
// *work-efficient*, not just correct: without it a shard races ahead into
// loop iterations whose cross-shard input has not arrived, computes from
// partial data, and then pays for avalanches of corrections when late
// diffs land (measured 3-4x total event inflation on WCC). With it, every
// shard observes the complete input for iteration j before evaluating
// iteration j+1 — the in-process analog of timely's frontier notification.
// `iterate` scopes need no extra machinery: iteration coordinates travel
// with each batch, and lexicographic frontier order is a linear extension
// of the product order, so times are processed in a valid serial order and
// the consolidated per-version output is identical to single-worker runs.
#ifndef GRAPHSURGE_DIFFERENTIAL_SHARDED_H_
#define GRAPHSURGE_DIFFERENTIAL_SHARDED_H_

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/trace_event.h"
#include "differential/dataflow.h"
#include "differential/exchange.h"

namespace gs::differential {

class ShardedDataflow {
 public:
  explicit ShardedDataflow(DataflowOptions options = DataflowOptions())
      : options_(FixupOptions(options)),
        hub_(std::make_unique<ExchangeHub>(options_.num_workers)),
        pool_(std::make_unique<ThreadPool>(options_.num_workers)) {
    workers_.reserve(options_.num_workers);
    for (size_t w = 0; w < options_.num_workers; ++w) {
      workers_.push_back(
          std::make_unique<Dataflow>(options_, hub_.get(), w));
    }
  }

  ShardedDataflow(const ShardedDataflow&) = delete;
  ShardedDataflow& operator=(const ShardedDataflow&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Worker shard `w`. Graph builders must be applied to every shard, in
  /// the same order with the same operators (see exchange.h on channel
  /// identity).
  Dataflow* worker(size_t w) { return workers_[w].get(); }

  /// The worker owning key-hash `hash` — use to place input records so
  /// that seeding work is spread across shards.
  size_t OwnerOfHash(uint64_t hash) const { return hash % workers_.size(); }

  const DataflowOptions& options() const { return options_; }

  /// The version the next Step() will process (identical on all shards).
  uint32_t current_version() const { return workers_[0]->current_version(); }

  /// Runs all shards to the global differential fixpoint for the current
  /// version, then seals it everywhere. Single-worker instances degrade to
  /// exactly the serial engine (the pool runs inline, no exchange edges
  /// exist).
  Status Step() {
    const size_t w = num_workers();
    GS_TRACE_SPAN_V("engine", "step", current_version());
    std::vector<Status> statuses(w, Status::Ok());
    std::vector<char> has_pending(w, 0);
    std::vector<Time> min_pending(w);
    pool_->ParallelFor(w, [&](size_t i) {
      ScopedWorkerId tag(static_cast<int>(i));
      workers_[i]->BeginStepPhase();
    });
    static metrics::Counter* frontier_rounds =
        metrics::Registry::Global().GetCounter("gs_engine_frontier_rounds");
    for (;;) {
      // Drain-and-report phase. Every inbox is drained here, so after the
      // barrier nothing is in flight and the reported minima are complete:
      // all pending work in the system is visible in some shard's scheduler.
      pool_->ParallelFor(w, [&](size_t i) {
        ScopedWorkerId tag(static_cast<int>(i));
        workers_[i]->DrainExchangeInboxes();
        has_pending[i] = workers_[i]->HasPendingWork() ? 1 : 0;
        if (has_pending[i]) min_pending[i] = workers_[i]->MinPendingTime();
      });
      GS_CHECK(hub_->in_flight() == 0)
          << "exchange batches still in flight after a full drain barrier";
      bool any = false;
      Time frontier;
      for (size_t i = 0; i < w; ++i) {
        if (!has_pending[i]) continue;
        if (!any || min_pending[i].LexLess(frontier)) frontier = min_pending[i];
        any = true;
      }
      if (!any) break;  // global quiescence
      frontier_rounds->Increment();
      if (trace::Enabled()) {
        // One instant event per frontier advance: which (version, iteration)
        // the fleet agreed to run next. Formatting only happens when a trace
        // is actually being recorded.
        char name[trace::kNameCapacity];
        std::snprintf(name, sizeof(name), "frontier v%u d%u i%u",
                      frontier.version,
                      static_cast<unsigned>(frontier.depth),
                      frontier.depth > 0 ? frontier.iters[0] : 0u);
        trace::AddInstantEvent("engine", name, frontier.version);
      }
      // Run phase, restricted to the frontier. At least the frontier event
      // itself is consumed, and every dataflow cycle passes through the
      // feedback edge's Delayed() hop, so each round makes progress and the
      // loop terminates.
      pool_->ParallelFor(w, [&](size_t i) {
        ScopedWorkerId tag(static_cast<int>(i));
        statuses[i] = workers_[i]->RunBoundedPhase(frontier);
      });
      for (const Status& s : statuses) GS_RETURN_IF_ERROR(s);
    }
    pool_->ParallelFor(w, [&](size_t i) {
      ScopedWorkerId tag(static_cast<int>(i));
      workers_[i]->SealPhase();
    });
    return Status::Ok();
  }

  /// Sum of all shards' work counters (call between Steps).
  DataflowStats AggregatedStats() const {
    DataflowStats total;
    for (const auto& worker : workers_) total.Merge(worker->stats());
    return total;
  }

  /// Per-shard events processed so far — the measured (not modeled) work
  /// distribution; max/mean over shards bounds achievable speedup.
  std::vector<uint64_t> PerWorkerEvents() const {
    std::vector<uint64_t> events;
    events.reserve(workers_.size());
    for (const auto& worker : workers_) {
      events.push_back(worker->scheduler().events_processed());
    }
    return events;
  }

 private:
  static DataflowOptions FixupOptions(DataflowOptions options) {
    options.num_workers = std::max<size_t>(1, options.num_workers);
    return options;
  }

  DataflowOptions options_;
  std::unique_ptr<ExchangeHub> hub_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Dataflow>> workers_;
};

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_SHARDED_H_
