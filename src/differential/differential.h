// Umbrella header for the differential computation engine.
//
// The engine implements differential computation (Abadi–McSherry–Plotkin;
// McSherry et al., CIDR'13) specialized to totally ordered version
// sequences — the exact structure of Graphsurge view collections. See
// DESIGN.md §3 for the execution model and the correctness argument.
#ifndef GRAPHSURGE_DIFFERENTIAL_DIFFERENTIAL_H_
#define GRAPHSURGE_DIFFERENTIAL_DIFFERENTIAL_H_

#include "differential/arrange.h"    // IWYU pragma: export
#include "differential/dataflow.h"   // IWYU pragma: export
#include "differential/exchange.h"   // IWYU pragma: export
#include "differential/iterate.h"    // IWYU pragma: export
#include "differential/join.h"       // IWYU pragma: export
#include "differential/operators.h"  // IWYU pragma: export
#include "differential/reduce.h"     // IWYU pragma: export
#include "differential/scheduler.h"  // IWYU pragma: export
#include "differential/sharded.h"    // IWYU pragma: export
#include "differential/time.h"       // IWYU pragma: export
#include "differential/trace.h"      // IWYU pragma: export
#include "differential/update.h"     // IWYU pragma: export

#endif  // GRAPHSURGE_DIFFERENTIAL_DIFFERENTIAL_H_
