// Update batches: the unit of data exchange between operators. All updates
// in a batch share one timestamp, carried alongside the batch.
#ifndef GRAPHSURGE_DIFFERENTIAL_UPDATE_H_
#define GRAPHSURGE_DIFFERENTIAL_UPDATE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace gs::differential {

/// Signed multiplicity of a record change (negative = retraction).
using Diff = int64_t;

/// One record change.
template <typename D>
struct Update {
  D data;
  Diff diff;
};

/// A set of updates at a single timestamp.
template <typename D>
using Batch = std::vector<Update<D>>;

/// Sorts by record and merges updates of equal records, dropping zeros.
/// Requires operator< on D.
template <typename D>
void Consolidate(Batch<D>* batch) {
  if (batch->empty()) return;
  std::sort(batch->begin(), batch->end(),
            [](const Update<D>& a, const Update<D>& b) {
              return a.data < b.data;
            });
  size_t out = 0;
  for (size_t i = 0; i < batch->size();) {
    D& data = (*batch)[i].data;
    Diff total = 0;
    size_t j = i;
    while (j < batch->size() && (*batch)[j].data == data) {
      total += (*batch)[j].diff;
      ++j;
    }
    if (total != 0) {
      if (out != i) (*batch)[out].data = std::move(data);  // no self-move
      (*batch)[out].diff = total;
      ++out;
    }
    i = j;
  }
  batch->resize(out);
}

/// Sum of |diff| over the batch — the "size" of a difference set as used by
/// the paper's optimizers.
template <typename D>
uint64_t UpdateMagnitude(const Batch<D>& batch) {
  uint64_t total = 0;
  for (const Update<D>& u : batch) {
    total += static_cast<uint64_t>(u.diff < 0 ? -u.diff : u.diff);
  }
  return total;
}

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_UPDATE_H_
