// Cross-worker data exchange for sharded execution (the timely "exchange
// pact"). Keyed operators (join/reduce) own state for a key only on the
// worker `HashValue(key) % num_workers`; an ExchangeOp spliced in front of
// them routes each update to its owner: records already local are delivered
// through the shard's own scheduler, records owned elsewhere are pushed
// into the owner's mutex-protected inbox and delivered when that shard next
// drains (Dataflow::DrainExchangeInboxes, driven by sharded.h).
//
// Channel identity: worker shards are built by running one deterministic
// builder per shard, so the n-th AllocateExchangeChannel() call on every
// shard denotes the same logical edge, with the same record type D. The hub
// stores endpoints type-erased and the (identically instantiated) ExchangeOp
// template casts them back.
#ifndef GRAPHSURGE_DIFFERENTIAL_EXCHANGE_H_
#define GRAPHSURGE_DIFFERENTIAL_EXCHANGE_H_

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "differential/dataflow.h"
#include "differential/fuzz_hooks.h"

namespace gs::differential {

/// Registry of exchange endpoints plus the global in-flight batch count
/// used by the sharded driver's termination check: after a barrier (all
/// shards' schedulers drained, nobody running), in_flight() == 0 if and
/// only if every pushed batch has been delivered — global quiescence.
class ExchangeHub {
 public:
  explicit ExchangeHub(size_t num_workers) : num_workers_(num_workers) {}

  ExchangeHub(const ExchangeHub&) = delete;
  ExchangeHub& operator=(const ExchangeHub&) = delete;

  size_t num_workers() const { return num_workers_; }

  /// Registers worker `worker`'s inbox for `channel`. Called serially while
  /// the shard graphs are built (before any worker thread runs).
  void RegisterInbox(uint32_t channel, size_t worker, void* inbox) {
    if (inboxes_.size() <= channel) inboxes_.resize(channel + 1);
    auto& row = inboxes_[channel];
    if (row.empty()) row.assign(num_workers_, nullptr);
    GS_CHECK(row[worker] == nullptr)
        << "exchange channel " << channel << " registered twice on worker "
        << worker;
    row[worker] = inbox;
  }

  /// The peer inbox for (channel, worker); null until that shard's graph
  /// has been built.
  void* inbox(uint32_t channel, size_t worker) const {
    GS_CHECK(channel < inboxes_.size() && worker < num_workers_);
    return inboxes_[channel][worker];
  }

  void NotePushed() {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    total_pushed_.fetch_add(1, std::memory_order_relaxed);
  }
  void NoteDrained(size_t batches) {
    in_flight_.fetch_sub(static_cast<int64_t>(batches),
                         std::memory_order_relaxed);
  }

  /// Number of pushed-but-undelivered batches. Only meaningful as a
  /// quiescence check while no worker is running (post-barrier).
  int64_t in_flight() const { return in_flight_.load(std::memory_order_seq_cst); }

  /// Cumulative cross-worker batches ever pushed through this hub — the
  /// exchange-traffic figure the scheduling report (/workersz) pairs with
  /// per-worker exchange-drain time.
  uint64_t total_pushed() const {
    return total_pushed_.load(std::memory_order_relaxed);
  }

 private:
  size_t num_workers_;
  std::vector<std::vector<void*>> inboxes_;  // [channel][worker]
  std::atomic<int64_t> in_flight_{0};
  std::atomic<uint64_t> total_pushed_{0};
};

/// One shard's receive queue for one exchange channel. Pushed to by peer
/// worker threads, drained by the owning shard; the mutex is the only
/// synchronization data crossing shards ever needs.
template <typename D>
class ExchangeInbox {
 public:
  void Push(const Time& time, Batch<D>&& batch) {
    std::lock_guard<std::mutex> lock(mutex_);
    items_.emplace_back(time, std::move(batch));
  }

  std::vector<std::pair<Time, Batch<D>>> Drain() {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::exchange(items_, {});
  }

  /// Payload bytes currently queued (record size × update count). Takes the
  /// inbox mutex, so it is safe against concurrent peer pushes.
  size_t QueuedBytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t updates = 0;
    for (const auto& [time, batch] : items_) updates += batch.size();
    return updates * sizeof(Update<D>);
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<Time, Batch<D>>> items_;
};

/// Repartitions a stream across worker shards: update u goes to worker
/// `part(u.data) % num_workers`. Local records short-circuit through this
/// shard's InputPort; remote records travel via the owner's inbox. Either
/// way delivery is a scheduled RunAt, so downstream operators observe one
/// consolidated batch per timestamp exactly as in serial mode.
template <typename D, typename PartFn>
class ExchangeOp : public OperatorBase {
 public:
  ExchangeOp(Dataflow* dataflow, Stream<D> in, PartFn part)
      : OperatorBase(dataflow, "exchange"),
        part_(std::move(part)),
        num_workers_(dataflow->options().num_workers),
        worker_(dataflow->worker_index()),
        hub_(dataflow->exchange_hub()),
        channel_(dataflow->AllocateExchangeChannel()) {
    GS_CHECK(dataflow->sharded()) << "ExchangeOp outside sharded execution";
    hub_->RegisterInbox(channel_, worker_, &inbox_);
    dataflow->RegisterInboxDrainer([this] { return DrainInbox(); });
    RegisterOutput(&output_);
    in.publisher()->Subscribe(dataflow, order(),
                              [this](const Time& t, const Batch<D>& b) {
                                Route(t, b);
                              });
  }

  Stream<D> stream() { return Stream<D>(dataflow_, &output_); }

  void CollectMemory(OperatorMemory* out) const override {
    out->queued_bytes += port_.buffered_bytes() + inbox_.QueuedBytes();
  }

 private:
  void Route(const Time& time, const Batch<D>& batch) {
    std::vector<Batch<D>> parts(num_workers_);
    for (const Update<D>& u : batch) {
      parts[part_(u.data) % num_workers_].push_back(u);
    }
    for (size_t w = 0; w < num_workers_; ++w) {
      if (parts[w].empty()) continue;
      if (w == worker_) {
        port_.Append(time, parts[w]);
        RequestRun(time);
      } else {
        dataflow_->stats().exchanged_updates += parts[w].size();
        dataflow_->stats().exchanged_bytes +=
            parts[w].size() * sizeof(Update<D>);
        auto* peer = static_cast<ExchangeInbox<D>*>(hub_->inbox(channel_, w));
        GS_CHECK(peer != nullptr) << "peer shard not yet built";
        // Count before pushing: the receiver may drain (and decrement)
        // concurrently, and in_flight must never transiently suggest
        // quiescence while a batch is still in an inbox.
        hub_->NotePushed();
        peer->Push(time, std::move(parts[w]));
      }
    }
  }

  bool DrainInbox() {
    std::vector<std::pair<Time, Batch<D>>> items = inbox_.Drain();
    if (items.empty()) return false;
    // Fuzz hook (fuzz_hooks.h): delivery order within one drain is
    // unordered by contract — receivers bucket per timestamp and the
    // scheduler orders the timestamps — so the fuzzer may permute it. The
    // permutation is a pure function of (seed, channel, worker, drain
    // count), so a replayed case perturbs deliveries the same way.
    const fuzz::Hooks& fz = fuzz::GlobalHooks();
    if (fz.shuffle_exchange && items.size() > 1) {
      const uint64_t salt =
          fuzz::Mix(fz.seed ^ (static_cast<uint64_t>(channel_) << 40) ^
                    (static_cast<uint64_t>(worker_) << 32) ^ drains_);
      std::vector<size_t> order(items.size());
      std::iota(order.begin(), order.end(), size_t{0});
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return fuzz::Mix(salt ^ a) < fuzz::Mix(salt ^ b);
      });
      std::vector<std::pair<Time, Batch<D>>> shuffled;
      shuffled.reserve(items.size());
      for (size_t i : order) shuffled.push_back(std::move(items[i]));
      items = std::move(shuffled);
    }
    ++drains_;
    for (auto& [time, batch] : items) {
      port_.Append(time, batch);
      RequestRun(time);
    }
    hub_->NoteDrained(items.size());
    return true;
  }

  void RunAt(const Time& time) override {
    output_.Publish(dataflow_, time, port_.Take(time));
  }

  PartFn part_;
  size_t num_workers_;
  size_t worker_;
  ExchangeHub* hub_;
  uint32_t channel_;
  uint64_t drains_ = 0;  // salts the fuzz shuffle per drain
  ExchangeInbox<D> inbox_;
  InputPort<D> port_;
  Publisher<D> output_;
};

/// Routes a keyed stream to each key's owning worker. No-op (returns the
/// input stream unchanged) outside sharded execution, so serial dataflows
/// pay nothing.
template <typename K, typename V>
Stream<std::pair<K, V>> ExchangeByKey(Stream<std::pair<K, V>> in) {
  Dataflow* df = in.dataflow();
  if (!df->sharded()) return in;
  auto part = [](const std::pair<K, V>& d) { return HashValue(d.first); };
  auto* op =
      df->AddOperator<ExchangeOp<std::pair<K, V>, decltype(part)>>(
          in, std::move(part));
  return op->stream();
}

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_EXCHANGE_H_
