// The event scheduler: a priority queue over (lexicographic time, operator
// order, sequence) keys. Lexicographic time order is a linear extension of
// the product partial order, so on acyclic dataflow paths every diff at a
// time s ≤ t is applied before work at t runs. Across feedback edges strict
// ordering is impossible; engine correctness does not depend on it because
// stateful operators emit corrections for late-arriving diffs (DESIGN.md
// §3.1) — the ordering here is an efficiency heuristic.
//
// Because the sub-time ordering is a heuristic, Schedule exposes a fuzzing
// hook (the FuzzScheduler point, fuzz_hooks.h): when installed, the
// (op_order, seq) tie-breakers are deterministically scrambled from the
// fuzz seed, perturbing operator activation order among same-time events
// without ever reordering across distinct times — the frontier protocol's
// guarantees survive by construction.
//
// Threading: a Scheduler is owned by exactly one worker shard and is only
// ever touched by the thread currently running that shard's phase (see
// sharded.h); it needs no internal synchronization.
#ifndef GRAPHSURGE_DIFFERENTIAL_SCHEDULER_H_
#define GRAPHSURGE_DIFFERENTIAL_SCHEDULER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "differential/fuzz_hooks.h"
#include "differential/time.h"

namespace gs::differential {

/// Total order key for scheduled events.
struct EventKey {
  Time time;
  uint32_t op_order = 0;  // creation order of the receiving operator
  uint64_t seq = 0;       // global tie-breaker (FIFO)

  bool operator>(const EventKey& other) const {
    if (!(time == other.time)) return other.time.LexLess(time);
    if (op_order != other.op_order) return op_order > other.op_order;
    return seq > other.seq;
  }
};

/// Min-heap event loop. Implemented as an explicit binary heap over a
/// vector (std::push_heap/std::pop_heap) rather than std::priority_queue:
/// the min element must be *moved out* before running it (re-entrant
/// Schedule calls from inside the action would otherwise invalidate it),
/// and priority_queue::top() only offers const access, forcing a
/// const_cast that is undefined behavior waiting to happen.
class Scheduler {
 public:
  void Schedule(const Time& time, uint32_t op_order,
                std::function<void()> action) {
    uint64_t seq = next_seq_++;
    // Fuzz hook (fuzz_hooks.h): the components below `time` are an
    // efficiency heuristic, so the fuzzer may scramble them to explore
    // alternative linear extensions of the time order. `time` itself is
    // never perturbed — the frontier protocol depends on it.
    const fuzz::Hooks& fz = fuzz::GlobalHooks();
    if (fz.scramble_op_order) {
      op_order = static_cast<uint32_t>(fuzz::Mix(fz.seed ^ (seq << 16) ^
                                                 op_order));
    }
    if (fz.scramble_seq) seq = fuzz::Mix(fz.seed ^ seq);
    heap_.push_back(Event{EventKey{time, op_order, seq}, std::move(action)});
    std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
    if (heap_.size() > peak_pending_) peak_pending_ = heap_.size();
  }

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }
  uint64_t events_processed() const { return events_processed_; }

  /// High-water backlog since the last TakePeakPending — the scheduling
  /// pressure figure surfaced per worker by /workersz. Reset per step so
  /// spikes are attributable to a version, not smeared across a run.
  uint64_t TakePeakPending() {
    uint64_t peak = peak_pending_;
    peak_pending_ = heap_.size();
    return peak;
  }

  /// Pops and runs the minimum event. Returns false if empty.
  bool RunOne() {
    if (heap_.empty()) return false;
    // pop_heap moves the minimum to the back, where it is legitimately
    // mutable; take the action and shrink *before* running it so re-entrant
    // Schedule calls cannot invalidate the event.
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    std::function<void()> action = std::move(heap_.back().action);
    heap_.pop_back();
    ++events_processed_;
    action();
    return true;
  }

  /// Key of the next pending event; only valid when !empty().
  const EventKey& PeekKey() const { return heap_.front().key; }

 private:
  struct Event {
    EventKey key;
    std::function<void()> action;
  };
  // Comparator yielding a min-heap on EventKey (heap algorithms build a
  // max-heap with respect to the comparator).
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      return a.key > b.key;
    }
  };

  std::vector<Event> heap_;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  uint64_t peak_pending_ = 0;
};

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_SCHEDULER_H_
