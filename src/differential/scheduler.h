// The event scheduler: a priority queue over (lexicographic time, operator
// order, sequence) keys. Lexicographic time order is a linear extension of
// the product partial order, so on acyclic dataflow paths every diff at a
// time s ≤ t is applied before work at t runs. Across feedback edges strict
// ordering is impossible; engine correctness does not depend on it because
// stateful operators emit corrections for late-arriving diffs (DESIGN.md
// §3.1) — the ordering here is an efficiency heuristic.
#ifndef GRAPHSURGE_DIFFERENTIAL_SCHEDULER_H_
#define GRAPHSURGE_DIFFERENTIAL_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "differential/time.h"

namespace gs::differential {

/// Total order key for scheduled events.
struct EventKey {
  Time time;
  uint32_t op_order = 0;  // creation order of the receiving operator
  uint64_t seq = 0;       // global tie-breaker (FIFO)

  bool operator>(const EventKey& other) const {
    if (!(time == other.time)) return other.time.LexLess(time);
    if (op_order != other.op_order) return op_order > other.op_order;
    return seq > other.seq;
  }
};

/// Min-heap event loop.
class Scheduler {
 public:
  void Schedule(const Time& time, uint32_t op_order,
                std::function<void()> action) {
    queue_.push(Event{EventKey{time, op_order, next_seq_++},
                      std::move(action)});
  }

  bool empty() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }
  uint64_t events_processed() const { return events_processed_; }

  /// Pops and runs the minimum event. Returns false if empty.
  bool RunOne() {
    if (queue_.empty()) return false;
    // Move the action out before popping so re-entrant Schedule calls from
    // inside the action cannot invalidate it.
    std::function<void()> action = std::move(
        const_cast<Event&>(queue_.top()).action);
    queue_.pop();
    ++events_processed_;
    action();
    return true;
  }

  /// Key of the next pending event; only valid when !empty().
  const EventKey& PeekKey() const { return queue_.top().key; }

 private:
  struct Event {
    EventKey key;
    std::function<void()> action;
    bool operator>(const Event& other) const { return key > other.key; }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
};

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_SCHEDULER_H_
