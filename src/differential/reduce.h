// Differential group-by-key reduction.
//
// For each key, the operator maintains the full timestamped input history
// and the output history it has emitted. When diffs for a key arrive at
// time t it re-evaluates the user function at every "interesting" time —
// the lub-closure of {t} over the key's input history — and emits output
// corrections `f(input@u) - output@u`. This is DD's reduce restricted to
// totally ordered versions; the closure argument for correctness under
// arbitrary processing order is spelled out in DESIGN.md §3.1.
//
// Accumulations are served from a persistent per-key *iteration-major*
// history (KeyState) instead of walking the trace on every evaluation: at
// any evaluation time every history entry's version is ≤ the current
// version (entries are only inserted at already-processed times), so at
// scope depth ≤ 1 membership of an entry in the accumulation depends on
// its innermost iteration coordinate alone. Keeping the history sorted by
// iteration with a cursor makes each evaluation O(entries between the
// previous and current iteration) — independent of how many versions or
// epochs the trace spans — and lets retract/insert pairs landing at the
// same iteration in different epochs cancel, which the trace itself can
// never do (it must keep version distinctions until they seal).
#ifndef GRAPHSURGE_DIFFERENTIAL_REDUCE_H_
#define GRAPHSURGE_DIFFERENTIAL_REDUCE_H_

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "differential/arrange.h"
#include "differential/dataflow.h"
#include "differential/exchange.h"
#include "differential/trace.h"

namespace gs::differential {

/// Reduce with user function
///   void fn(const K& key, const Batch<V>& input, Batch<Out>* output)
/// where `input` is the key's consolidated value multiset (counts normally
/// positive; transiently negative counts are possible mid-fixpoint and must
/// be tolerated) and `output` receives the desired output multiset.
/// Keys whose input multiset is empty produce no output (DD convention).
///
/// The input history is either owned (stream constructor: the operator
/// indexes its exchanged input itself) or shared (Arranged constructor: the
/// operator reads the arrangement's trace and only tracks which keys were
/// touched — no second copy of the index). The output history doubles as an
/// arrangement: arranged() exposes it for downstream sharing, which is
/// sound because the deltas are inserted into the output trace before they
/// are published.
template <typename K, typename V, typename Out, typename Fn>
class ReduceOp : public OperatorBase {
 public:
  ReduceOp(Dataflow* dataflow, Stream<std::pair<K, V>> in, Fn fn)
      : OperatorBase(dataflow, "reduce"),
        fn_(std::move(fn)),
        input_(&owned_input_) {
    RegisterOutput(&output_);
    in.publisher()->Subscribe(
        dataflow, order(),
        [this](const Time& t, const Batch<std::pair<K, V>>& b) {
          port_.Append(t, b);
          RequestRun(t);
        });
  }

  ReduceOp(Dataflow* dataflow, const Arranged<K, V>& in, Fn fn)
      : OperatorBase(dataflow, "reduce"),
        fn_(std::move(fn)),
        input_(in.trace()) {
    dataflow->stats().arrangement_shares++;
    RegisterOutput(&output_);
    in.deltas().publisher()->Subscribe(
        dataflow, order(),
        [this](const Time& t, const Batch<std::pair<K, V>>& b) {
          port_.Append(t, b);
          RequestRun(t);
        });
  }

  Stream<std::pair<K, Out>> stream() {
    return Stream<std::pair<K, Out>>(dataflow_, &output_);
  }

  /// The output history as a shared arrangement (already key-partitioned:
  /// the input was exchanged by key and the output is keyed the same way).
  /// Exposing the output as an arrangement also arms the process-level
  /// arrangement cache for it: a reduce whose output other dataflows could
  /// rebuild identically (e.g. the DistinctArranged adjacency) is exactly
  /// one whose output is shared downstream.
  Arranged<K, Out> arranged() {
    ArmCache();
    return Arranged<K, Out>(&output_trace_, stream());
  }

  void OnStepBegin(uint32_t version) override {
    if (!import_ || version != 0) return;
    // Import mode: replay the cached output deltas downstream instead of
    // evaluating. All snapshot entries sit at Time(0) — the builder only
    // qualified because every evaluation landed there.
    Batch<std::pair<K, Out>> replay;
    replay.reserve(seeded_rows_->size());
    for (const auto& e : *seeded_rows_) {
      replay.push_back(Update<std::pair<K, Out>>{{e.key, e.value}, e.diff});
    }
    seeded_rows_.reset();
    if (!replay.empty()) output_.Publish(dataflow_, Time(0), std::move(replay));
  }

  void OnVersionSealed(uint32_t version) override {
    if (input_ == &owned_input_) owned_input_.CompactTo(version);
    output_trace_.CompactTo(version);
    if (export_) {
      if (version == 0) {
        dataflow_->options().arrcache->PutRows(
            static_cast<int>(order()),
            static_cast<int>(dataflow_->worker_index()),
            output_trace_.ExportConsolidated());
      }
      export_ = false;
    }
  }

  void OnEpochSealed(uint32_t last_version) override {
    if (input_ == &owned_input_) owned_input_.CompactEpoch(last_version);
    output_trace_.CompactEpoch(last_version);
  }

  void CollectMemory(OperatorMemory* out) const override {
    // The shared-arrangement input trace is accounted by its owning
    // ArrangeOp/ReduceOp, never double-counted here.
    if (input_ == &owned_input_) out->AddTrace(owned_input_);
    out->AddTrace(output_trace_);
    out->queued_bytes += port_.buffered_bytes();
    // The iteration-major evaluation index (see KeyState) is auxiliary
    // operator state, reported alongside the queues.
    // Iteration-major evaluation index (KeyState histories), maintained
    // incrementally — SealPhase calls this every version, so walking the
    // whole key map here would dwarf the work being measured. The small
    // per-key accumulations are not counted.
    out->queued_bytes += states_bytes_;
  }

 private:
  /// One entry of the iteration-major history: a trace entry with its
  /// version coordinate dropped. Sound as an evaluation index because
  /// probes only ever look backward along the version axis (see the file
  /// header): at probe time (v, i), entry ≤ probe ⇔ entry.iter ≤ i.
  template <typename U>
  struct IterEntry {
    uint32_t iter;
    U value;
    Diff diff;
  };

  /// Persistent per-key evaluation state — the iteration-major mirror of
  /// the key's input and output histories, plus running accumulations.
  ///
  /// Invariants (built == true):
  ///   - `hist` holds exactly the key's input history (same per-(value,
  ///     iteration) diff sums as the trace), sorted by iteration;
  ///     `out_hist` likewise for the output history.
  ///   - `acc` is the consolidated sum of hist[0, pos), where [0, pos) is
  ///     exactly the entries with iter ≤ cur_iter; `out_acc`/`out_pos`
  ///     mirror this for the output.
  /// Maintained incrementally: every insert into the underlying traces for
  /// this key is mirrored here, either from the key's slice of the arriving
  /// batch (input; ArrangeOp and this op's owned input both insert exactly
  /// the batches they deliver, and batch keys are always evaluated at the
  /// batch's time) or from the emitted delta (output). Trace compaction
  /// cannot invalidate the state: it preserves per-(value, ≤t) diff sums
  /// for every probe time t at or after the frontier, and the mirror holds
  /// copies. Depth ≥ 2 times (nested Iterate) leave the iteration-scalar
  /// regime and fall back to a full trace walk per evaluation.
  struct KeyState {
    std::vector<IterEntry<V>> hist;       // sorted by iter
    std::vector<IterEntry<Out>> out_hist;  // sorted by iter
    Batch<V> acc;
    Batch<Out> out_acc;
    /// Snapshots of (acc, pos) / (out_acc, out_pos) at iteration 0. Every
    /// version's first evaluation of a key lands at iteration 0, so the
    /// cursor's once-per-version backward sweep (from wherever the previous
    /// version converged) is replaced by restoring these — O(accumulation)
    /// instead of O(entries between the iterations).
    Batch<V> base_acc;
    Batch<Out> base_out_acc;
    size_t base_pos = 0;
    size_t base_out_pos = 0;
    size_t pos = 0;      // hist[0, pos) ⇔ iter ≤ cur_iter
    size_t out_pos = 0;  // out_hist[0, out_pos) ⇔ iter ≤ cur_iter
    uint32_t cur_iter = 0;
    size_t hist_lwm = 0;  // size after the last consolidation
    size_t out_lwm = 0;
    bool built = false;
  };
  struct KeyHash {
    size_t operator()(const K& k) const {
      return static_cast<size_t>(HashValue(k));
    }
  };

  // Processing model: a key touched at time t is (re-)evaluated at t only.
  // "Interesting" future times — lubs of t with the key's history — are
  // *scheduled* as pending visits rather than evaluated eagerly; when that
  // time is reached the visit coalesces with any diffs that arrive there
  // anyway. This deferral is what keeps differential re-execution
  // proportional to the change volume (the eager alternative evaluates
  // O(#iterations²) times per key per version).
  // Checks the run's arrangement-cache transaction once, when the output
  // is first exposed as a shared arrangement (arranged()).
  void ArmCache() {
    if (cache_checked_) return;
    cache_checked_ = true;
    ArrCacheTxn* txn = dataflow_->options().arrcache.get();
    if (txn == nullptr) return;
    if (txn->importing()) {
      seeded_rows_ = txn->GetRows<typename Trace<K, Out>::Entry>(
          static_cast<int>(order()),
          static_cast<int>(dataflow_->worker_index()));
      if (seeded_rows_ != nullptr) {
        output_trace_.SeedShared(seeded_rows_);
        import_ = true;
      }
    } else if (txn->building()) {
      export_ = true;
    }
  }

  void RunAt(const Time& time) override {
    if (import_) {
      // Cached slots exist only for reduces whose every evaluation landed
      // at Time(0) during the build; op orders are deterministic per
      // (computation, workers), so this operator's input can only arrive
      // there too. The input deltas are already reflected in the seeded
      // output snapshot — discard them.
      GS_CHECK(time == Time(0))
          << "imported reduce received activity at " << time.ToString();
      port_.Take(time);
      return;
    }
    if (!(time == Time(0))) export_ = false;  // multi-time: not cacheable
    Batch<std::pair<K, V>> batch = port_.Take(time);
    // Sort the batch by key: each key's new updates form one contiguous
    // range handed to EvaluateKeyAt, which mirrors them into the key's
    // iteration-major history instead of re-walking the trace.
    std::sort(batch.begin(), batch.end(),
              [](const Update<std::pair<K, V>>& a,
                 const Update<std::pair<K, V>>& b) {
                return a.data.first < b.data.first;
              });
    if (input_ == &owned_input_) {
      for (const auto& u : batch) {
        owned_input_.Insert(u.data.first, u.data.second, time, u.diff);
      }
    }
    std::vector<K> keys;
    auto pending = pending_keys_.find(time);
    if (pending != pending_keys_.end()) {
      keys = std::move(pending->second);
      pending_keys_.erase(pending);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    if (keys.empty() && batch.empty()) return;

    Batch<std::pair<K, Out>> out;
    // Walk the sorted batch and the sorted pending-visit keys in tandem so
    // each key is evaluated once, with its batch range (possibly empty).
    size_t b = 0, p = 0;
    while (b < batch.size() || p < keys.size()) {
      const K* key;
      size_t b_end = b;
      if (b < batch.size() &&
          (p >= keys.size() || !(keys[p] < batch[b].data.first))) {
        key = &batch[b].data.first;
        while (b_end < batch.size() && batch[b_end].data.first == *key) {
          ++b_end;
        }
        if (p < keys.size() && *key == keys[p]) ++p;  // coalesce the visit
      } else {
        key = &keys[p++];
      }
      EvaluateKeyAt(*key, time, batch.data() + b, batch.data() + b_end, &out);
      b = b_end;
    }
    // All per-key deltas may cancel (e.g. a retraction and re-assertion of
    // the same minimum); publishing the empty batch would still bump stats
    // and wake subscribers for nothing.
    if (!out.empty()) output_.Publish(dataflow_, time, std::move(out));
  }

  // Registers a future re-evaluation of `key` at `u`. Duplicates are fine:
  // RunAt sorts and uniques the visit list, so the pending containers can
  // be plain append-only vectors (no per-visit node allocation).
  void ScheduleKeyVisit(const Time& u, const K& key) {
    pending_keys_[u].push_back(key);
    RequestRun(u);  // deduplicated by OperatorBase
  }

  // Schedules a visit of `key` at (time.version, iter) for every distinct
  // iteration in hist[pos, end) — the lubs of `time` with the entries still
  // ahead of the cursor. Called when the key's input changes (new batch
  // deltas or first build): the lub-closure at depth ≤ 1 is exactly "every
  // future iteration present in the history at the current version", and
  // within one version those lubs are the same at every later evaluation,
  // so pure scheduled visits never need to re-schedule.
  template <typename U>
  void ScheduleTailVisits(const Time& time,
                          const std::vector<IterEntry<U>>& hist, size_t pos,
                          const K& key) {
    if (pos >= hist.size()) return;
    // A depth-0 probe's lub with any entry collapses to the probe time
    // itself (no iteration coordinate to raise) — nothing to schedule.
    if (time.depth == 0) return;
    Time u = time;
    uint32_t last = 0;
    bool first = true;
    for (size_t i = pos; i < hist.size(); ++i) {
      if (first || hist[i].iter != last) {
        first = false;
        last = hist[i].iter;
        u.iters[time.depth - 1] = last;
        ScheduleKeyVisit(u, key);
      }
    }
  }

  // Adds `diff` to `value`'s count in the sorted accumulation, keeping it
  // sorted by value. Counts may reach zero; the zombie entry is left in
  // place (user functions tolerate zero counts mid-fixpoint) and purged
  // lazily once the accumulation grows past PurgeZeros' threshold — far
  // cheaper than re-consolidating the whole batch on every cursor move.
  template <typename U>
  static void AccAdd(Batch<U>* acc, const U& value, Diff diff) {
    auto it = std::lower_bound(
        acc->begin(), acc->end(), value,
        [](const Update<U>& u, const U& v) { return u.data < v; });
    if (it != acc->end() && it->data == value) {
      it->diff += diff;
      return;
    }
    acc->insert(it, Update<U>{value, diff});
  }

  template <typename U>
  static void PurgeZeros(Batch<U>* acc) {
    if (acc->size() < 64) return;
    acc->erase(std::remove_if(acc->begin(), acc->end(),
                              [](const Update<U>& u) { return u.diff == 0; }),
               acc->end());
  }

  // Moves the cursor of (hist, pos, acc) to iteration `iter`, folding
  // crossed entries into `acc` (negated when moving backward — a new
  // version can re-enter the loop at a lower iteration than the previous
  // version converged at).
  template <typename U>
  static void SeekCursor(std::vector<IterEntry<U>>* hist, size_t* pos,
                         uint32_t iter, Batch<U>* acc) {
    while (*pos < hist->size() && (*hist)[*pos].iter <= iter) {
      const IterEntry<U>& e = (*hist)[(*pos)++];
      AccAdd(acc, e.value, e.diff);
    }
    while (*pos > 0 && (*hist)[*pos - 1].iter > iter) {
      const IterEntry<U>& e = (*hist)[--(*pos)];
      AccAdd(acc, e.value, -e.diff);
    }
  }

  // Consolidates `hist` by (iteration, value) once it has grown 2× past
  // the last consolidated size: cross-epoch retract/insert pairs landing
  // at the same iteration cancel, keeping the evaluation index near the
  // converged-history size. Iterations are never merged with each other —
  // probes at intermediate iterations still tell them apart. The prefix
  // sums by iteration are preserved, so `acc` stays valid; only the cursor
  // index needs recomputing.
  /// Index of the first entry with iter > `iter` in a sorted history.
  template <typename U>
  static size_t PrefixEnd(const std::vector<IterEntry<U>>& hist,
                          uint32_t iter) {
    return static_cast<size_t>(
        std::partition_point(hist.begin(), hist.end(),
                             [iter](const IterEntry<U>& e) {
                               return e.iter <= iter;
                             }) -
        hist.begin());
  }

  template <typename U>
  static bool MaybeConsolidateHist(std::vector<IterEntry<U>>* hist,
                                   size_t* pos, size_t* lwm,
                                   uint32_t cur_iter) {
    if (hist->size() < 32 || hist->size() < 2 * *lwm) return false;
    std::sort(hist->begin(), hist->end(),
              [](const IterEntry<U>& a, const IterEntry<U>& b) {
                if (a.iter != b.iter) return a.iter < b.iter;
                return a.value < b.value;
              });
    size_t out = 0;
    for (size_t i = 0; i < hist->size();) {
      size_t j = i;
      Diff total = 0;
      while (j < hist->size() && (*hist)[j].iter == (*hist)[i].iter &&
             (*hist)[j].value == (*hist)[i].value) {
        total += (*hist)[j].diff;
        ++j;
      }
      if (total != 0) {
        (*hist)[out] = (*hist)[i];
        (*hist)[out].diff = total;
        ++out;
      }
      i = j;
    }
    hist->resize(out);
    *lwm = out;
    *pos = PrefixEnd(*hist, cur_iter);
    return true;
  }

  // First touch of a key: mirrors its trace history (input and output)
  // into iteration-major form and parks the cursor at `time`.
  void BuildKeyState(const K& key, const Time& time, KeyState* state) {
    const uint32_t iter0 = time.iters[0];
    state->hist.clear();
    state->out_hist.clear();
    state->acc.clear();
    state->out_acc.clear();
    input_->ForEach(key, [&](const V& value, const Time& t, Diff diff) {
      state->hist.push_back(IterEntry<V>{t.iters[0], value, diff});
    });
    output_trace_.ForEach(key, [&](const Out& value, const Time& t,
                                   Diff diff) {
      state->out_hist.push_back(IterEntry<Out>{t.iters[0], value, diff});
    });
    auto by_iter_v = [](const IterEntry<V>& a, const IterEntry<V>& b) {
      return a.iter < b.iter;
    };
    auto by_iter_o = [](const IterEntry<Out>& a, const IterEntry<Out>& b) {
      return a.iter < b.iter;
    };
    std::sort(state->hist.begin(), state->hist.end(), by_iter_v);
    std::sort(state->out_hist.begin(), state->out_hist.end(), by_iter_o);
    state->hist_lwm = state->hist.size();
    state->out_lwm = state->out_hist.size();
    state->pos = 0;
    state->out_pos = 0;
    SeekCursor(&state->hist, &state->pos, 0, &state->acc);
    SeekCursor(&state->out_hist, &state->out_pos, 0, &state->out_acc);
    state->base_acc = state->acc;
    state->base_out_acc = state->out_acc;
    state->base_pos = state->pos;
    state->base_out_pos = state->out_pos;
    SeekCursor(&state->hist, &state->pos, iter0, &state->acc);
    SeekCursor(&state->out_hist, &state->out_pos, iter0, &state->out_acc);
    state->cur_iter = iter0;
    state->built = true;
    states_bytes_ += state->hist.size() * sizeof(IterEntry<V>) +
                     state->out_hist.size() * sizeof(IterEntry<Out>);
    ScheduleTailVisits(time, state->hist, state->pos, key);
  }

  // Evaluates `key` at exactly `time`; [nb, ne) is the key's slice of the
  // batch that arrived there (already inserted into the trace; the mirror
  // folds it in here).
  void EvaluateKeyAt(const K& key, const Time& time,
                     const Update<std::pair<K, V>>* nb,
                     const Update<std::pair<K, V>>* ne,
                     Batch<std::pair<K, Out>>* out) {
    // No early-out on an empty input history: eager spine consolidation can
    // cancel a key's input to nothing while an output retraction is still
    // owed, so the (empty input → empty desired → negative delta) path must
    // always run.
    if (input_ != &owned_input_) dataflow_->stats().arrangement_probes += 1;
    dataflow_->stats().reduce_evaluations++;

    if (time.depth > 1) {
      EvaluateDeepKeyAt(key, time, out);
      return;
    }
    const uint32_t iter0 = time.iters[0];  // zero-padded → 0 at depth 0

    KeyState& state = states_[key];
    bool was_built = state.built;
    if (!state.built) {
      BuildKeyState(key, time, &state);
    } else {
      if (iter0 == 0 && state.cur_iter > 0) {
        state.acc = state.base_acc;
        state.out_acc = state.base_out_acc;
        state.pos = state.base_pos;
        state.out_pos = state.base_out_pos;
      } else {
        SeekCursor(&state.hist, &state.pos, iter0, &state.acc);
        SeekCursor(&state.out_hist, &state.out_pos, iter0, &state.out_acc);
        PurgeZeros(&state.acc);
        PurgeZeros(&state.out_acc);
      }
      state.cur_iter = iter0;
    }
    if (was_built && nb != ne) {
      // Input changed at `time`: schedule the lub-closure over the entries
      // ahead of the cursor, then mirror the new deltas into the prefix.
      ScheduleTailVisits(time, state.hist, state.pos, key);
      for (const auto* u = nb; u != ne; ++u) {
        state.hist.insert(
            state.hist.begin() + state.pos,
            IterEntry<V>{iter0, u->data.second, u->diff});
        ++state.pos;
        AccAdd(&state.acc, u->data.second, u->diff);
        if (iter0 == 0) {
          AccAdd(&state.base_acc, u->data.second, u->diff);
          ++state.base_pos;
        }
      }
      if (iter0 == 0) PurgeZeros(&state.base_acc);
      states_bytes_ +=
          static_cast<size_t>(ne - nb) * sizeof(IterEntry<V>);
      size_t before = state.hist.size();
      if (MaybeConsolidateHist(&state.hist, &state.pos, &state.hist_lwm,
                               state.cur_iter)) {
        state.base_pos = PrefixEnd(state.hist, 0u);
      }
      states_bytes_ -= (before - state.hist.size()) * sizeof(IterEntry<V>);
    }
#if GRAPHSURGE_PARANOID
    // Cross-check the mirror against a direct trace walk (skipped when the
    // fuzzer plants a lost-insert bug in the trace on purpose).
    if (fuzz::GlobalHooks().drop_insert_at == 0) {
      Batch<V> check;
      input_->Accumulate(key, time, &check);
      Batch<V> mirror = state.acc;
      Consolidate(&mirror);
      GS_CHECK(SameBatch(check, mirror))
          << "iteration-major input mirror diverged from trace at "
          << time.ToString();
      Batch<Out> out_check;
      output_trace_.Accumulate(key, time, &out_check);
      Batch<Out> out_mirror = state.out_acc;
      Consolidate(&out_mirror);
      GS_CHECK(SameBatch(out_check, out_mirror))
          << "iteration-major output mirror diverged from trace at "
          << time.ToString();
    }
#endif
    Batch<Out>& desired = scratch_desired_;
    desired.clear();
    // The user function must see a genuinely empty batch when every count
    // has cancelled — zombie zero-count entries would make sum-style
    // aggregates emit a spurious zero record — so drop them eagerly here
    // (PurgeZeros elsewhere is threshold-gated for cursor-move cost only).
    state.acc.erase(
        std::remove_if(state.acc.begin(), state.acc.end(),
                       [](const Update<V>& u) { return u.diff == 0; }),
        state.acc.end());
    if (!state.acc.empty()) {
      fn_(key, state.acc, &desired);
      Consolidate(&desired);
    }

    // delta = desired - current (both consolidated & sorted).
    const Batch<Out>& current = state.out_acc;
    Batch<Out>& delta = scratch_delta_;
    delta.clear();
    size_t i = 0, j = 0;
    while (i < desired.size() || j < current.size()) {
      if (j >= current.size() ||
          (i < desired.size() && desired[i].data < current[j].data)) {
        delta.push_back(desired[i++]);
      } else if (i >= desired.size() || current[j].data < desired[i].data) {
        if (current[j].diff != 0) {
          delta.push_back(Update<Out>{current[j].data, -current[j].diff});
        }
        ++j;
      } else {
        Diff d = desired[i].diff - current[j].diff;
        if (d != 0) delta.push_back(Update<Out>{desired[i].data, d});
        ++i;
        ++j;
      }
    }
    if (delta.empty()) return;
    dataflow_->stats().AddShardWork(HashValue(key),
                                    state.acc.size() + delta.size());
    for (const Update<Out>& d : delta) {
      output_trace_.Insert(key, d.data, time, d.diff);
      state.out_hist.insert(state.out_hist.begin() + state.out_pos,
                            IterEntry<Out>{iter0, d.data, d.diff});
      ++state.out_pos;
      out->push_back(Update<std::pair<K, Out>>{{key, d.data}, d.diff});
    }
    states_bytes_ += delta.size() * sizeof(IterEntry<Out>);
    // The output at `time` now equals `desired` by construction.
    state.out_acc = desired;
    if (iter0 == 0) {
      state.base_out_acc = desired;
      state.base_out_pos = state.out_pos;
    }
    size_t out_before = state.out_hist.size();
    if (MaybeConsolidateHist(&state.out_hist, &state.out_pos, &state.out_lwm,
                             state.cur_iter)) {
      state.base_out_pos = PrefixEnd(state.out_hist, 0u);
    }
    states_bytes_ -=
        (out_before - state.out_hist.size()) * sizeof(IterEntry<Out>);
  }

#if GRAPHSURGE_PARANOID
  template <typename U>
  static bool SameBatch(const Batch<U>& a, const Batch<U>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i].data == b[i].data) || a[i].diff != b[i].diff) return false;
    }
    return true;
  }
#endif

  // Depth ≥ 2 evaluation (nested Iterate): outside the iteration-scalar
  // regime the mirror's membership rule breaks, so accumulate straight
  // from the traces and re-derive the interesting times every evaluation.
  void EvaluateDeepKeyAt(const K& key, const Time& time,
                         Batch<std::pair<K, Out>>* out) {
    Batch<V>& in_u = scratch_in_;
    in_u.clear();
    scratch_future_.clear();
    input_->AccumulateWithFutures(key, time, &in_u, &scratch_future_);
    if (!scratch_future_.empty()) {
      scratch_lubs_.clear();
      for (const auto& fe : scratch_future_) {
        scratch_lubs_.push_back(time.Lub(fe.first));
      }
      std::sort(scratch_lubs_.begin(), scratch_lubs_.end(), TimeLexLess{});
      scratch_lubs_.erase(
          std::unique(scratch_lubs_.begin(), scratch_lubs_.end()),
          scratch_lubs_.end());
      for (const Time& u : scratch_lubs_) ScheduleKeyVisit(u, key);
    }

    Batch<Out>& desired = scratch_desired_;
    desired.clear();
    if (!in_u.empty()) {
      fn_(key, in_u, &desired);
      Consolidate(&desired);
    }

    Batch<Out>& current = scratch_current_;
    current.clear();
    output_trace_.Accumulate(key, time, &current);

    Batch<Out>& delta = scratch_delta_;
    delta.clear();
    size_t i = 0, j = 0;
    while (i < desired.size() || j < current.size()) {
      if (j >= current.size() ||
          (i < desired.size() && desired[i].data < current[j].data)) {
        delta.push_back(desired[i++]);
      } else if (i >= desired.size() || current[j].data < desired[i].data) {
        delta.push_back(Update<Out>{current[j].data, -current[j].diff});
        ++j;
      } else {
        Diff d = desired[i].diff - current[j].diff;
        if (d != 0) delta.push_back(Update<Out>{desired[i].data, d});
        ++i;
        ++j;
      }
    }
    if (delta.empty()) return;
    dataflow_->stats().AddShardWork(HashValue(key),
                                    in_u.size() + delta.size());
    for (const Update<Out>& d : delta) {
      output_trace_.Insert(key, d.data, time, d.diff);
      out->push_back(Update<std::pair<K, Out>>{{key, d.data}, d.diff});
    }
  }

  Fn fn_;
  InputPort<std::pair<K, V>> port_;
  std::map<Time, std::vector<K>, TimeLexLess> pending_keys_;
  Trace<K, V> owned_input_;
  const Trace<K, V>* input_;  // &owned_input_ or a shared arrangement
  Trace<K, Out> output_trace_;
  Publisher<std::pair<K, Out>> output_;
  std::unordered_map<K, KeyState, KeyHash> states_;
  size_t states_bytes_ = 0;  // history bytes across states_, kept in sync
  Batch<V> scratch_in_;
  Batch<Out> scratch_desired_;
  Batch<Out> scratch_current_;
  Batch<Out> scratch_delta_;
  std::vector<Time> scratch_lubs_;
  std::vector<std::pair<Time, Update<V>>> scratch_future_;
  // Process-level arrangement cache participation (see ArmCache).
  bool cache_checked_ = false;
  bool import_ = false;  // output seeded from the cache; skip evaluation
  bool export_ = false;  // builder run; snapshot the output at version 0 seal
  std::shared_ptr<const std::vector<typename Trace<K, Out>::Entry>>
      seeded_rows_;
};

/// Groups a keyed stream and applies `fn` per key (see ReduceOp). Reduce is
/// a key-repartitioning boundary: in sharded execution the input is
/// exchanged by key hash first, so each shard evaluates only the keys it
/// owns.
template <typename Out, typename K, typename V, typename Fn>
Stream<std::pair<K, Out>> Reduce(Stream<std::pair<K, V>> in, Fn fn) {
  in = ExchangeByKey(in);
  auto* op = in.dataflow()->template AddOperator<ReduceOp<K, V, Out, Fn>>(
      in, std::move(fn));
  return op->stream();
}

/// Keeps, per key, the minimum value with multiplicity one (e.g. shortest
/// distance, smallest component label). Values with non-positive net counts
/// are ignored.
template <typename K, typename V>
Stream<std::pair<K, V>> ReduceMin(Stream<std::pair<K, V>> in) {
  return Reduce<V>(in, [](const K&, const Batch<V>& input, Batch<V>* output) {
    const V* best = nullptr;
    for (const Update<V>& u : input) {
      if (u.diff > 0 && (best == nullptr || u.data < *best)) best = &u.data;
    }
    if (best != nullptr) output->push_back(Update<V>{*best, 1});
  });
}

/// Keeps, per key, the maximum value with multiplicity one.
template <typename K, typename V>
Stream<std::pair<K, V>> ReduceMax(Stream<std::pair<K, V>> in) {
  return Reduce<V>(in, [](const K&, const Batch<V>& input, Batch<V>* output) {
    const V* best = nullptr;
    for (const Update<V>& u : input) {
      if (u.diff > 0 && (best == nullptr || *best < u.data)) best = &u.data;
    }
    if (best != nullptr) output->push_back(Update<V>{*best, 1});
  });
}

/// Per-key count of records (with multiplicity).
template <typename K, typename V>
Stream<std::pair<K, int64_t>> Count(Stream<std::pair<K, V>> in) {
  return Reduce<int64_t>(
      in, [](const K&, const Batch<V>& input, Batch<int64_t>* output) {
        Diff total = 0;
        for (const Update<V>& u : input) total += u.diff;
        if (total != 0) output->push_back(Update<int64_t>{total, 1});
      });
}

/// Set-semantics projection: every record present with positive count
/// appears exactly once.
template <typename D>
Stream<D> Distinct(Stream<D> in) {
  auto keyed = in.Map([](const D& d) { return std::make_pair(d, true); });
  auto reduced = Reduce<bool>(
      keyed, [](const D&, const Batch<bool>& input, Batch<bool>* output) {
        Diff total = 0;
        for (const Update<bool>& u : input) total += u.diff;
        if (total > 0) output->push_back(Update<bool>{true, 1});
      });
  return reduced.Map([](const std::pair<D, bool>& p) { return p.first; });
}

/// Groups a shared arrangement and applies `fn` per key. No input index is
/// built — the reduce reads the arrangement's trace directly.
template <typename Out, typename K, typename V, typename Fn>
Stream<std::pair<K, Out>> ReduceArranged(const Arranged<K, V>& in, Fn fn) {
  auto* op =
      in.dataflow()->template AddOperator<ReduceOp<K, V, Out, Fn>>(
          in, std::move(fn));
  return op->stream();
}

/// Per-key set-semantics projection producing a shared arrangement: each
/// (key, value) with positive net count appears exactly once, and the
/// deduplicated index is owned by the reduce's output trace — the canonical
/// way to build a deduplicated adjacency arrangement (key = src,
/// value = dst) that many joins then probe for free.
template <typename K, typename V>
Arranged<K, V> DistinctArranged(Stream<std::pair<K, V>> in) {
  in = ExchangeByKey(in);
  auto fn = [](const K&, const Batch<V>& input, Batch<V>* output) {
    // `input` is consolidated: one entry per distinct value with its net
    // count.
    for (const Update<V>& u : input) {
      if (u.diff > 0) output->push_back(Update<V>{u.data, 1});
    }
  };
  auto* op =
      in.dataflow()->template AddOperator<ReduceOp<K, V, V, decltype(fn)>>(
          in, std::move(fn));
  return op->arranged();
}

/// Per-key count over a shared arrangement, itself exposed as an
/// arrangement (e.g. out-degrees over an arranged edge set).
template <typename K, typename V>
Arranged<K, int64_t> CountArranged(const Arranged<K, V>& in) {
  auto fn = [](const K&, const Batch<V>& input, Batch<int64_t>* output) {
    Diff total = 0;
    for (const Update<V>& u : input) total += u.diff;
    if (total != 0) output->push_back(Update<int64_t>{total, 1});
  };
  auto* op =
      in.dataflow()
          ->template AddOperator<ReduceOp<K, V, int64_t, decltype(fn)>>(
              in, std::move(fn));
  return op->arranged();
}

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_REDUCE_H_
