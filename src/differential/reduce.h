// Differential group-by-key reduction.
//
// For each key, the operator maintains the full timestamped input history
// and the output history it has emitted. When diffs for a key arrive at
// time t it re-evaluates the user function at every "interesting" time —
// the lub-closure of {t} over the key's input history — and emits output
// corrections `f(input@u) - output@u`. This is DD's reduce restricted to
// totally ordered versions; the closure argument for correctness under
// arbitrary processing order is spelled out in DESIGN.md §3.1.
#ifndef GRAPHSURGE_DIFFERENTIAL_REDUCE_H_
#define GRAPHSURGE_DIFFERENTIAL_REDUCE_H_

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "differential/arrange.h"
#include "differential/dataflow.h"
#include "differential/exchange.h"
#include "differential/trace.h"

namespace gs::differential {

/// Reduce with user function
///   void fn(const K& key, const Batch<V>& input, Batch<Out>* output)
/// where `input` is the key's consolidated value multiset (counts normally
/// positive; transiently negative counts are possible mid-fixpoint and must
/// be tolerated) and `output` receives the desired output multiset.
/// Keys whose input multiset is empty produce no output (DD convention).
///
/// The input history is either owned (stream constructor: the operator
/// indexes its exchanged input itself) or shared (Arranged constructor: the
/// operator reads the arrangement's trace and only tracks which keys were
/// touched — no second copy of the index). The output history doubles as an
/// arrangement: arranged() exposes it for downstream sharing, which is
/// sound because the deltas are inserted into the output trace before they
/// are published.
template <typename K, typename V, typename Out, typename Fn>
class ReduceOp : public OperatorBase {
 public:
  ReduceOp(Dataflow* dataflow, Stream<std::pair<K, V>> in, Fn fn)
      : OperatorBase(dataflow, "reduce"),
        fn_(std::move(fn)),
        input_(&owned_input_) {
    RegisterOutput(&output_);
    in.publisher()->Subscribe(
        dataflow, order(),
        [this](const Time& t, const Batch<std::pair<K, V>>& b) {
          port_.Append(t, b);
          RequestRun(t);
        });
  }

  ReduceOp(Dataflow* dataflow, const Arranged<K, V>& in, Fn fn)
      : OperatorBase(dataflow, "reduce"),
        fn_(std::move(fn)),
        input_(in.trace()) {
    dataflow->stats().arrangement_shares++;
    RegisterOutput(&output_);
    in.deltas().publisher()->Subscribe(
        dataflow, order(),
        [this](const Time& t, const Batch<std::pair<K, V>>& b) {
          port_.Append(t, b);
          RequestRun(t);
        });
  }

  Stream<std::pair<K, Out>> stream() {
    return Stream<std::pair<K, Out>>(dataflow_, &output_);
  }

  /// The output history as a shared arrangement (already key-partitioned:
  /// the input was exchanged by key and the output is keyed the same way).
  Arranged<K, Out> arranged() {
    return Arranged<K, Out>(&output_trace_, stream());
  }

  void OnVersionSealed(uint32_t version) override {
    if (input_ == &owned_input_) owned_input_.CompactTo(version);
    output_trace_.CompactTo(version);
  }

  void CollectMemory(OperatorMemory* out) const override {
    // The shared-arrangement input trace is accounted by its owning
    // ArrangeOp/ReduceOp, never double-counted here.
    if (input_ == &owned_input_) out->AddTrace(owned_input_);
    out->AddTrace(output_trace_);
    out->queued_bytes += port_.buffered_bytes();
  }

 private:
  // Processing model: a key touched at time t is (re-)evaluated at t only.
  // "Interesting" future times — lubs of t with the key's history — are
  // *scheduled* as pending visits rather than evaluated eagerly; when that
  // time is reached the visit coalesces with any diffs that arrive there
  // anyway. This deferral is what keeps differential re-execution
  // proportional to the change volume (the eager alternative evaluates
  // O(#iterations²) times per key per version).
  void RunAt(const Time& time) override {
    Batch<std::pair<K, V>> batch = port_.Take(time);
    std::vector<K> keys;
    auto pending = pending_keys_.find(time);
    if (pending != pending_keys_.end()) {
      keys.assign(pending->second.begin(), pending->second.end());
      pending_keys_.erase(pending);
    }
    keys.reserve(keys.size() + batch.size());
    const bool owns_input = input_ == &owned_input_;
    for (const auto& u : batch) {
      if (owns_input) {
        owned_input_.Insert(u.data.first, u.data.second, time, u.diff);
      }
      keys.push_back(u.data.first);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    if (keys.empty()) return;

    Batch<std::pair<K, Out>> out;
    for (const K& key : keys) {
      EvaluateKeyAt(key, time, &out);
    }
    // All per-key deltas may cancel (e.g. a retraction and re-assertion of
    // the same minimum); publishing the empty batch would still bump stats
    // and wake subscribers for nothing.
    if (!out.empty()) output_.Publish(dataflow_, time, std::move(out));
  }

  // Registers a future re-evaluation of `key` at `u`.
  void ScheduleKeyVisit(const Time& u, const K& key) {
    pending_keys_[u].insert(key);
    RequestRun(u);  // deduplicated by OperatorBase
  }

  // Evaluates `key` at exactly `time` and schedules its future interesting
  // times.
  void EvaluateKeyAt(const K& key, const Time& time,
                     Batch<std::pair<K, Out>>* out) {
    // No early-out on an empty input history: eager spine consolidation can
    // cancel a key's input to nothing while an output retraction is still
    // owed, so the (empty input → empty desired → negative delta) path must
    // always run.
    //
    // Two shared-trace reads per evaluation when the input is an
    // arrangement: the interesting-times ForEach plus the Accumulate below.
    if (input_ != &owned_input_) dataflow_->stats().arrangement_probes += 2;
    input_->ForEach(key, [&](const V&, const Time& entry_time, Diff) {
      Time lub = time.Lub(entry_time);
      if (!(lub == time)) ScheduleKeyVisit(lub, key);
    });

    dataflow_->stats().reduce_evaluations++;
    // Member scratch buffers: EvaluateKeyAt runs millions of times; per-call
    // vector allocations dominate otherwise.
    Batch<V>& in_u = scratch_in_;
    in_u.clear();
    input_->Accumulate(key, time, &in_u);

    Batch<Out>& desired = scratch_desired_;
    desired.clear();
    if (!in_u.empty()) {
      fn_(key, in_u, &desired);
      Consolidate(&desired);
    }

    Batch<Out>& current = scratch_current_;
    current.clear();
    output_trace_.Accumulate(key, time, &current);

    // delta = desired - current (both consolidated & sorted).
    Batch<Out>& delta = scratch_delta_;
    delta.clear();
    size_t i = 0, j = 0;
    while (i < desired.size() || j < current.size()) {
      if (j >= current.size() ||
          (i < desired.size() && desired[i].data < current[j].data)) {
        delta.push_back(desired[i++]);
      } else if (i >= desired.size() || current[j].data < desired[i].data) {
        delta.push_back(Update<Out>{current[j].data, -current[j].diff});
        ++j;
      } else {
        Diff d = desired[i].diff - current[j].diff;
        if (d != 0) delta.push_back(Update<Out>{desired[i].data, d});
        ++i;
        ++j;
      }
    }
    if (delta.empty()) return;
    dataflow_->stats().AddShardWork(HashValue(key), in_u.size() + delta.size());
    for (const Update<Out>& d : delta) {
      output_trace_.Insert(key, d.data, time, d.diff);
      out->push_back(Update<std::pair<K, Out>>{{key, d.data}, d.diff});
    }
  }

  Fn fn_;
  InputPort<std::pair<K, V>> port_;
  std::map<Time, std::set<K>, TimeLexLess> pending_keys_;
  Trace<K, V> owned_input_;
  const Trace<K, V>* input_;  // &owned_input_ or a shared arrangement
  Trace<K, Out> output_trace_;
  Publisher<std::pair<K, Out>> output_;
  Batch<V> scratch_in_;
  Batch<Out> scratch_desired_;
  Batch<Out> scratch_current_;
  Batch<Out> scratch_delta_;
};

/// Groups a keyed stream and applies `fn` per key (see ReduceOp). Reduce is
/// a key-repartitioning boundary: in sharded execution the input is
/// exchanged by key hash first, so each shard evaluates only the keys it
/// owns.
template <typename Out, typename K, typename V, typename Fn>
Stream<std::pair<K, Out>> Reduce(Stream<std::pair<K, V>> in, Fn fn) {
  in = ExchangeByKey(in);
  auto* op = in.dataflow()->template AddOperator<ReduceOp<K, V, Out, Fn>>(
      in, std::move(fn));
  return op->stream();
}

/// Keeps, per key, the minimum value with multiplicity one (e.g. shortest
/// distance, smallest component label). Values with non-positive net counts
/// are ignored.
template <typename K, typename V>
Stream<std::pair<K, V>> ReduceMin(Stream<std::pair<K, V>> in) {
  return Reduce<V>(in, [](const K&, const Batch<V>& input, Batch<V>* output) {
    const V* best = nullptr;
    for (const Update<V>& u : input) {
      if (u.diff > 0 && (best == nullptr || u.data < *best)) best = &u.data;
    }
    if (best != nullptr) output->push_back(Update<V>{*best, 1});
  });
}

/// Keeps, per key, the maximum value with multiplicity one.
template <typename K, typename V>
Stream<std::pair<K, V>> ReduceMax(Stream<std::pair<K, V>> in) {
  return Reduce<V>(in, [](const K&, const Batch<V>& input, Batch<V>* output) {
    const V* best = nullptr;
    for (const Update<V>& u : input) {
      if (u.diff > 0 && (best == nullptr || *best < u.data)) best = &u.data;
    }
    if (best != nullptr) output->push_back(Update<V>{*best, 1});
  });
}

/// Per-key count of records (with multiplicity).
template <typename K, typename V>
Stream<std::pair<K, int64_t>> Count(Stream<std::pair<K, V>> in) {
  return Reduce<int64_t>(
      in, [](const K&, const Batch<V>& input, Batch<int64_t>* output) {
        Diff total = 0;
        for (const Update<V>& u : input) total += u.diff;
        if (total != 0) output->push_back(Update<int64_t>{total, 1});
      });
}

/// Set-semantics projection: every record present with positive count
/// appears exactly once.
template <typename D>
Stream<D> Distinct(Stream<D> in) {
  auto keyed = in.Map([](const D& d) { return std::make_pair(d, true); });
  auto reduced = Reduce<bool>(
      keyed, [](const D&, const Batch<bool>& input, Batch<bool>* output) {
        Diff total = 0;
        for (const Update<bool>& u : input) total += u.diff;
        if (total > 0) output->push_back(Update<bool>{true, 1});
      });
  return reduced.Map([](const std::pair<D, bool>& p) { return p.first; });
}

/// Groups a shared arrangement and applies `fn` per key. No input index is
/// built — the reduce reads the arrangement's trace directly.
template <typename Out, typename K, typename V, typename Fn>
Stream<std::pair<K, Out>> ReduceArranged(const Arranged<K, V>& in, Fn fn) {
  auto* op =
      in.dataflow()->template AddOperator<ReduceOp<K, V, Out, Fn>>(
          in, std::move(fn));
  return op->stream();
}

/// Per-key set-semantics projection producing a shared arrangement: each
/// (key, value) with positive net count appears exactly once, and the
/// deduplicated index is owned by the reduce's output trace — the canonical
/// way to build a deduplicated adjacency arrangement (key = src,
/// value = dst) that many joins then probe for free.
template <typename K, typename V>
Arranged<K, V> DistinctArranged(Stream<std::pair<K, V>> in) {
  in = ExchangeByKey(in);
  auto fn = [](const K&, const Batch<V>& input, Batch<V>* output) {
    // `input` is consolidated: one entry per distinct value with its net
    // count.
    for (const Update<V>& u : input) {
      if (u.diff > 0) output->push_back(Update<V>{u.data, 1});
    }
  };
  auto* op =
      in.dataflow()->template AddOperator<ReduceOp<K, V, V, decltype(fn)>>(
          in, std::move(fn));
  return op->arranged();
}

/// Per-key count over a shared arrangement, itself exposed as an
/// arrangement (e.g. out-degrees over an arranged edge set).
template <typename K, typename V>
Arranged<K, int64_t> CountArranged(const Arranged<K, V>& in) {
  auto fn = [](const K&, const Batch<V>& input, Batch<int64_t>* output) {
    Diff total = 0;
    for (const Update<V>& u : input) total += u.diff;
    if (total != 0) output->push_back(Update<int64_t>{total, 1});
  };
  auto* op =
      in.dataflow()
          ->template AddOperator<ReduceOp<K, V, int64_t, decltype(fn)>>(
              in, std::move(fn));
  return op->arranged();
}

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_REDUCE_H_
