// Keyed traces: per-key histories of timestamped value updates, the storage
// behind joins, reductions, and shared arrangements (arrange.h).
//
// Storage is an LSM-style spine of sorted immutable batches plus a small
// unsorted tail:
//
//   tail_   — recent Inserts, appended in O(1); sealed into a sorted batch
//             when it reaches a threshold (never by probes, so the
//             insert/probe interleaving of reduce cannot shatter the spine
//             into tiny batches).
//   spine_  — sorted immutable batches ordered by (key, value, lex time).
//             Sealing maintains a geometric size invariant by merging the
//             youngest batches, so the spine holds O(log n) batches and
//             insertion is amortized O(log n) like any LSM.
//
// Probes are cursor-based: ForEach/Accumulate binary-search each spine
// batch for the key's contiguous range and scan the (bounded) tail, so a
// key's history is read from O(log n) cache-friendly runs instead of a
// pointer-chased per-key vector. Compaction happens at merge time: once a
// version is sealed (no future batch can carry an earlier version), any
// batch still holding older versions is rewritten to the sealed frontier —
// legal because every future probe or lub time has version ≥ the frontier,
// so its product-order relation to rewritten entries is unchanged — and
// equal (key, value, time) entries then cancel. Full-spine merges are
// amortized: CompactTo runs one only after at least half the trace is new
// since the last merge, so sealing a version never rescans a quiescent
// trace. Iteration coordinates are never collapsed: a future probe at
// (v', j) must still see exactly the entries with iteration ≤ j.
#ifndef GRAPHSURGE_DIFFERENTIAL_TRACE_H_
#define GRAPHSURGE_DIFFERENTIAL_TRACE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/timer.h"
#include "differential/fuzz_hooks.h"
#include "differential/time.h"
#include "differential/update.h"

#if GRAPHSURGE_PARANOID
#include "common/logging.h"
#endif

namespace gs::differential {

/// Cumulative count of galloped (exponential-search) bulk advances taken by
/// spine batch merges — the observable proof that skewed merges leave the
/// element-at-a-time path.
inline metrics::Counter* SpineMergeGallops() {
  static auto* counter =
      metrics::Registry::Global().GetCounter("gs_spine_merge_gallops");
  return counter;
}

/// SLO histogram: latency of tail seals and the geometric batch merges they
/// trigger — the incremental spine-maintenance path, amortized over at
/// least a tail's worth of inserts per observation.
inline metrics::Histogram* SpineMergeNanos() {
  static auto* histogram =
      metrics::Registry::Global().GetHistogram("gs_spine_merge_nanos");
  return histogram;
}

/// SLO histogram: latency of full-spine compaction merges (version/epoch
/// seals that pass the amortization guards).
inline metrics::Histogram* SpineCompactionNanos() {
  static auto* histogram =
      metrics::Registry::Global().GetHistogram("gs_spine_compaction_nanos");
  return histogram;
}

/// Keyed multiversioned index of (key, value, time, diff) updates.
/// Key and value types need operator< and operator==.
template <typename K, typename V>
class Trace {
 public:
  struct Entry {
    K key;
    V value;
    Time time;
    Diff diff;
  };

  void Insert(const K& key, const V& value, const Time& time, Diff diff) {
    if (diff == 0) return;
    ++insert_seq_;
    const fuzz::Hooks& fz = fuzz::GlobalHooks();
    if (fz.drop_insert_at != 0 && insert_seq_ == fz.drop_insert_at) {
      // Hidden --inject-bug hook: silently lose this update (a simulated
      // lost-update bug the fuzzer must catch). See fuzz_hooks.h.
      return;
    }
    tail_.push_back(Entry{key, value, time, diff});
    ++total_entries_;
    peak_entries_ = std::max(peak_entries_, total_entries_);
    ++inserts_since_compaction_;
    const size_t seal_threshold =
        fz.tail_seal_threshold != 0 ? fz.tail_seal_threshold
                                    : kTailSealThreshold;
    if (tail_.size() >= seal_threshold) SealTail();
    if (fz.compaction_period != 0 && insert_seq_ % fz.compaction_period == 0) {
      // Injected mid-run compaction point. Insert call sites never hold an
      // iteration over this trace, so compacting here is legal; the
      // paranoid check asserts the hook observes a fully-merged spine.
      CheckSpineInvariants();
      CompactTo(sealed_version_);
    }
  }

  /// Visits every entry of `key` as fn(value, time, diff), in unspecified
  /// order. The trace must not be mutated during the visit.
  template <typename Fn>
  void ForEach(const K& key, Fn&& fn) const {
    for (const SpineBatch& batch : spine_) {
      auto [lo, hi] = KeyRange(batch, key);
      for (auto it = lo; it != hi; ++it) fn(it->value, it->time, it->diff);
    }
    for (const Entry& e : tail_) {
      if (e.key == key) fn(e.value, e.time, e.diff);
    }
  }

  /// Accumulates the key's value multiset at `time` (sum of diffs over all
  /// entries with entry.time ≤ time in the product order). Appends the net
  /// non-zero (value, count) pairs to `out`, consolidated and sorted by
  /// value — the appended region is built consolidated, never copied out
  /// and back.
  ///
  /// Spine batches are sorted by (key, value, lex time), so a key's matches
  /// from one batch already form a value-sorted run; only the bounded tail
  /// needs sorting. The net multiset comes from a k-way merge of those runs
  /// (k = O(log n) batches) instead of re-sorting the whole history on
  /// every probe — probes dominate reduce-heavy incremental workloads.
  void Accumulate(const K& key, const Time& time, Batch<V>* out) const {
    Batch<V>& matches = accumulate_scratch_;
    matches.clear();
    auto& runs = accumulate_runs_;
    runs.clear();
    size_t run_start = 0;
    for (const SpineBatch& batch : spine_) {
      auto [lo, hi] = KeyRange(batch, key);
      if (lo == hi) continue;
      if (batch.uniform_time) {
        // Consolidated-run fast path: one time check covers the whole run —
        // either every entry qualifies (bulk-append, no per-entry product-
        // order test) or none does.
        if (!lo->time.LessEq(time)) continue;
        for (auto it = lo; it != hi; ++it) {
          matches.push_back(Update<V>{it->value, it->diff});
        }
      } else {
        for (auto it = lo; it != hi; ++it) {
          if (it->time.LessEq(time)) {
            matches.push_back(Update<V>{it->value, it->diff});
          }
        }
      }
      if (matches.size() > run_start) {
        runs.push_back({run_start, matches.size()});
        run_start = matches.size();
      }
    }
    for (const Entry& e : tail_) {
      if (e.key == key && e.time.LessEq(time)) {
        matches.push_back(Update<V>{e.value, e.diff});
      }
    }
    if (matches.size() > run_start) {
      std::sort(matches.begin() + run_start, matches.end(),
                [](const Update<V>& a, const Update<V>& b) {
                  return a.data < b.data;
                });
      runs.push_back({run_start, matches.size()});
    }
    MergeRuns(out);
  }

  /// Accumulate plus a full capture of the rest of the history in one walk
  /// — the rebuild probe behind reduce's per-(version, key) memo. Entries
  /// partition exactly: an entry with time ≤ `time` joins the consolidated
  /// accumulation appended to `out` (its lub with `time` is `time` itself —
  /// nothing to schedule); any other entry is appended to `futures` with
  /// its full timestamp, from which the caller derives both the interesting
  /// times to schedule (lub(time, entry.time)) and the deltas to fold into
  /// the running accumulation when those times mature. Equivalent to
  /// ForEach followed by Accumulate, but pays a single pass over the key's
  /// spine ranges and tail.
  void AccumulateWithFutures(
      const K& key, const Time& time, Batch<V>* out,
      std::vector<std::pair<Time, Update<V>>>* futures) const {
    Batch<V>& matches = accumulate_scratch_;
    matches.clear();
    auto& runs = accumulate_runs_;
    runs.clear();
    size_t run_start = 0;
    for (const SpineBatch& batch : spine_) {
      auto [lo, hi] = KeyRange(batch, key);
      if (lo == hi) continue;
      if (batch.uniform_time) {
        // Consolidated-run fast path: the whole run shares one time, so it
        // partitions wholesale into the accumulation or the futures list.
        if (lo->time.LessEq(time)) {
          for (auto it = lo; it != hi; ++it) {
            matches.push_back(Update<V>{it->value, it->diff});
          }
        } else {
          for (auto it = lo; it != hi; ++it) {
            futures->push_back({it->time, Update<V>{it->value, it->diff}});
          }
        }
      } else {
        for (auto it = lo; it != hi; ++it) {
          if (it->time.LessEq(time)) {
            matches.push_back(Update<V>{it->value, it->diff});
          } else {
            futures->push_back({it->time, Update<V>{it->value, it->diff}});
          }
        }
      }
      if (matches.size() > run_start) {
        runs.push_back({run_start, matches.size()});
        run_start = matches.size();
      }
    }
    for (const Entry& e : tail_) {
      if (!(e.key == key)) continue;
      if (e.time.LessEq(time)) {
        matches.push_back(Update<V>{e.value, e.diff});
      } else {
        futures->push_back({e.time, Update<V>{e.value, e.diff}});
      }
    }
    if (matches.size() > run_start) {
      std::sort(matches.begin() + run_start, matches.end(),
                [](const Update<V>& a, const Update<V>& b) {
                  return a.data < b.data;
                });
      runs.push_back({run_start, matches.size()});
    }
    MergeRuns(out);
  }

  /// Seals `sealed_version`: from now on batch merges rewrite earlier
  /// versions to the sealed frontier, cancelling converged histories.
  /// A full-spine merge costs O(total entries), so it runs only once enough
  /// new entries have arrived to pay for it — compaction stays O(1)
  /// amortized per insert instead of O(total) per sealed version, while a
  /// quiescent trace is never rescanned.
  void CompactTo(uint32_t sealed_version) {
    sealed_version_ = std::max(sealed_version_, sealed_version);
    SealTail();
    if (spine_.empty()) return;
    if (inserts_since_compaction_ * 2 < total_entries_) return;
    FullMerge();
  }

  /// Epoch-seal compaction: like CompactTo but with a looser amortization
  /// guard. An epoch boundary makes the *whole* pre-epoch history
  /// collapsible (no future input can land at or before it), so a merge
  /// pays off much earlier than the per-version 1/2 threshold — but an
  /// unconditional merge would rescan large quiescent traces (e.g. a stable
  /// adjacency arrangement) at every epoch for nothing. 1/8 new entries is
  /// the compromise: insert-heavy traces — exactly the ones whose per-key
  /// histories probes walk — re-collapse nearly every epoch, near-static
  /// ones are left alone.
  void CompactEpoch(uint32_t sealed_version) {
    sealed_version_ = std::max(sealed_version_, sealed_version);
    SealTail();
    if (spine_.empty()) return;
    if (inserts_since_compaction_ * 8 < total_entries_) return;
    FullMerge();
  }

  /// Unconditional full compaction to `sealed_version`, skipping every
  /// amortization guard. Quiescent traces (empty spine) stay untouched.
  void CompactFully(uint32_t sealed_version) {
    sealed_version_ = std::max(sealed_version_, sealed_version);
    SealTail();
    if (spine_.empty()) return;
    FullMerge();
  }

  /// Asserts every batch-spine invariant; compiled to a no-op unless the
  /// build defines GRAPHSURGE_PARANOID (CMake option of the same name, on
  /// in the fuzzer's CI configurations). The invariants a consistent —
  /// never partially-merged — spine satisfies:
  ///   1. every batch is sorted strictly by EntryLess — sorted,
  ///      consolidated, and free of zero diffs;
  ///   2. each batch's min_version matches its entries, and version ranges
  ///      respect the sealed frontier: a batch is either untouched history
  ///      (it may still hold pre-frontier versions awaiting rewrite) or
  ///      fully rewritten — after a full compaction pass no entry sits
  ///      below the sealed frontier;
  ///   3. the geometric size invariant holds across adjacent batches
  ///      (each ≥ 2× the next younger one);
  ///   4. the entry accounting (total_entries_) matches the spine + tail.
  void CheckSpineInvariants() const {
#if GRAPHSURGE_PARANOID
    size_t counted = tail_.size();
    for (size_t b = 0; b < spine_.size(); ++b) {
      const SpineBatch& batch = spine_[b];
      const std::vector<Entry>& rows = batch.rows();
      GS_CHECK(!rows.empty()) << "empty spine batch " << b;
      uint32_t min_version = UINT32_MAX;
      uint32_t max_version = 0;
      for (size_t i = 0; i < rows.size(); ++i) {
        const Entry& e = rows[i];
        GS_CHECK(e.diff != 0)
            << "zero-diff entry in spine batch " << b << " at " << i;
        GS_CHECK(!batch.uniform_time || e.time == rows.front().time)
            << "uniform_time spine batch " << b
            << " has divergent time at " << i;
        min_version = std::min(min_version, e.time.version);
        max_version = std::max(max_version, e.time.version);
        if (i > 0) {
          // EntryLess is total on distinct (key, value, time) triples, so
          // sorted-and-consolidated means strictly increasing.
          GS_CHECK(EntryLess(rows[i - 1], e))
              << "spine batch " << b << " unsorted or unconsolidated at "
              << i;
        }
      }
      GS_CHECK(batch.min_version == min_version)
          << "spine batch " << b << " min_version " << batch.min_version
          << " != computed " << min_version;
      GS_CHECK(batch.max_version == max_version)
          << "spine batch " << b << " max_version " << batch.max_version
          << " != computed " << max_version;
      if (b + 1 < spine_.size()) {
        GS_CHECK(rows.size() >= 2 * spine_[b + 1].rows().size())
            << "geometric invariant violated between batches " << b
            << " (" << rows.size() << ") and " << b + 1 << " ("
            << spine_[b + 1].rows().size() << ")";
      }
      counted += rows.size();
    }
    GS_CHECK(counted == total_entries_)
        << "entry accounting drift: counted " << counted << " tracked "
        << total_entries_;
#endif
  }

  /// Distinct keys present (test/diagnostic use; O(n log n)).
  size_t num_keys() const {
    std::vector<K> keys;
    keys.reserve(total_entries_);
    for (const SpineBatch& batch : spine_) {
      for (const Entry& e : batch.rows()) keys.push_back(e.key);
    }
    for (const Entry& e : tail_) keys.push_back(e.key);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys.size();
  }

  size_t total_entries() const { return total_entries_; }
  size_t num_spine_batches() const { return spine_.size() + !tail_.empty(); }

  /// Fixed per-entry footprint used by the byte gauges below. Deliberately
  /// sizeof(Entry) × entry count (not malloc capacity): entry counts are
  /// execution-order independent after compaction, so serial == sum of
  /// shards holds exactly and the /statusz gauges can be cross-checked
  /// against a manual spine-size computation.
  static constexpr size_t kEntryBytes = sizeof(Entry);

  /// Live resident entry bytes: (spine + tail entries) × sizeof(Entry).
  size_t live_bytes() const { return total_entries_ * kEntryBytes; }
  /// High-water mark of live_bytes() since construction.
  size_t high_water_bytes() const { return peak_entries_ * kEntryBytes; }
  /// Cumulative bytes reclaimed by consolidation/compaction (every drop of
  /// a cancelled or merged entry, wherever it happened).
  uint64_t reclaimed_bytes() const { return entries_reclaimed_ * kEntryBytes; }

  /// Cumulative spine-maintenance counters: pairwise batch merges performed
  /// (geometric invariant restores plus full-compaction passes) and
  /// full-spine compaction passes run by CompactTo. Trace-owning operators
  /// re-report these into DataflowStats at each seal.
  uint64_t num_merges() const { return num_merges_; }
  uint64_t num_compactions() const { return num_compactions_; }

  /// Seeds an empty trace with an immutable shared snapshot (the
  /// process-level arrangement cache, arrcache.h). The snapshot must be
  /// sorted by EntryLess and consolidated — exactly what ExportConsolidated
  /// produces. Storage is aliased, not copied: concurrent dataflows seeded
  /// from the same snapshot share one vector. A seeded trace must receive
  /// no further Inserts (import-mode operators guarantee this); the
  /// copy-on-write in the merge paths keeps even a misuse memory-safe.
  void SeedShared(std::shared_ptr<const std::vector<Entry>> rows) {
    if (!rows || rows->empty()) return;
    SpineBatch batch;
    batch.min_version = UINT32_MAX;
    batch.max_version = 0;
    batch.uniform_time = true;
    for (const Entry& e : *rows) {
      batch.min_version = std::min(batch.min_version, e.time.version);
      batch.max_version = std::max(batch.max_version, e.time.version);
      if (!(e.time == rows->front().time)) batch.uniform_time = false;
    }
    total_entries_ += rows->size();
    peak_entries_ = std::max(peak_entries_, total_entries_);
    batch.shared = std::move(rows);
    spine_.push_back(std::move(batch));
    CheckSpineInvariants();
  }

  /// A consolidated snapshot of the full history: every entry (spine +
  /// tail), sorted by EntryLess, equal (key, value, time) triples merged,
  /// zero diffs dropped. Pure — the trace and its accounting are untouched.
  std::shared_ptr<const std::vector<Entry>> ExportConsolidated() const {
    auto out = std::make_shared<std::vector<Entry>>();
    out->reserve(total_entries_);
    for (const SpineBatch& batch : spine_) {
      const std::vector<Entry>& rows = batch.rows();
      out->insert(out->end(), rows.begin(), rows.end());
    }
    out->insert(out->end(), tail_.begin(), tail_.end());
    std::sort(out->begin(), out->end(), EntryLess);
    size_t w = 0;
    for (size_t i = 0; i < out->size();) {
      size_t j = i;
      Diff total = 0;
      while (j < out->size() && (*out)[j].key == (*out)[i].key &&
             (*out)[j].value == (*out)[i].value &&
             (*out)[j].time == (*out)[i].time) {
        total += (*out)[j].diff;
        ++j;
      }
      if (total != 0) {
        (*out)[w] = (*out)[i];
        (*out)[w].diff = total;
        ++w;
      }
      i = j;
    }
    out->resize(w);
    return out;
  }

 private:
  // Tail seal threshold: bounds the linear tail scan every probe pays and
  // the batch size below which sorting is pointless.
  static constexpr size_t kTailSealThreshold = 64;

  struct SpineBatch {
    std::vector<Entry> entries;  // sorted by (key, value, lex time)
    // Alternative shared storage: a batch seeded from the process-level
    // arrangement cache (SeedShared) aliases the immutable cached snapshot
    // instead of owning a copy. At most one of shared/entries is populated.
    std::shared_ptr<const std::vector<Entry>> shared;
    uint32_t min_version = 0;    // minimum version in `entries`
    uint32_t max_version = 0;    // maximum version in `entries`
    // True when every entry carries one identical Time — the usual shape
    // after a full compaction rewrote the batch to the sealed frontier.
    // Probes then test the time once per key range instead of per entry.
    bool uniform_time = false;

    const std::vector<Entry>& rows() const {
      return shared ? *shared : entries;
    }
    // Copy-on-write: mutating paths (rewrites, merges) first take ownership.
    // Seeded traces receive no inserts and stay at the sealed frontier, so
    // in practice this never fires for them — it is the safety net that
    // keeps the cache decoupled from spine maintenance.
    void Materialize() {
      if (shared) {
        entries = *shared;
        shared.reset();
      }
    }
  };

  // Merges the whole spine into one batch rewritten to the sealed frontier.
  void FullMerge() {
    Timer compaction_timer;
    inserts_since_compaction_ = 0;
    ++num_compactions_;
    while (spine_.size() > 1) {
      SpineBatch b = std::move(spine_.back());
      spine_.pop_back();
      SpineBatch a = std::move(spine_.back());
      spine_.pop_back();
      SpineBatch merged = MergeBatches(std::move(a), std::move(b));
      if (!merged.entries.empty()) spine_.push_back(std::move(merged));
    }
    if (!spine_.empty()) {
      Rewrite(&spine_.front());
      if (spine_.front().rows().empty()) spine_.clear();
    }
    SpineCompactionNanos()->Observe(
        static_cast<uint64_t>(compaction_timer.Nanos()));
    CheckSpineInvariants();
  }

  // Merges accumulate_runs_ (value-sorted runs inside accumulate_scratch_)
  // into net non-zero (value, count) pairs appended to `out`.
  void MergeRuns(Batch<V>* out) const {
    const Batch<V>& matches = accumulate_scratch_;
    auto& runs = accumulate_runs_;
    if (runs.empty()) return;
    if (runs.size() == 1) {
      // Common case after compaction: one spine batch holds the whole
      // history — consolidate adjacent equal values directly.
      for (size_t i = runs[0].first; i < runs[0].second;) {
        Diff total = 0;
        size_t j = i;
        while (j < runs[0].second && matches[j].data == matches[i].data) {
          total += matches[j].diff;
          ++j;
        }
        if (total != 0) out->push_back(Update<V>{matches[i].data, total});
        i = j;
      }
      return;
    }
    // k is small: a linear scan over run heads beats a heap.
    for (;;) {
      const V* min_value = nullptr;
      for (const auto& [pos, end] : runs) {
        if (pos < end &&
            (min_value == nullptr || matches[pos].data < *min_value)) {
          min_value = &matches[pos].data;
        }
      }
      if (min_value == nullptr) return;
      Diff total = 0;
      for (auto& [pos, end] : runs) {
        while (pos < end && matches[pos].data == *min_value) {
          total += matches[pos].diff;
          ++pos;
        }
      }
      if (total != 0) out->push_back(Update<V>{*min_value, total});
    }
  }

  static bool EntryLess(const Entry& a, const Entry& b) {
    if (a.key < b.key) return true;
    if (b.key < a.key) return false;
    if (a.value < b.value) return true;
    if (b.value < a.value) return false;
    if (a.time.LexLess(b.time)) return true;
    if (b.time.LexLess(a.time)) return false;
    // Distinct times can be LexLess-equal across scope depths (<1> vs
    // <1,0>, zero-padded). Break the tie on depth so EntryLess is a total
    // order on distinct (key, value, time) triples: a LexLess tie at equal
    // depth implies identical iters, hence equal times. Without this,
    // consolidation in MergeBatches (which treats a two-way LexLess tie as
    // equality) could merge entries the product order still tells apart.
    return a.time.depth < b.time.depth;
  }

  static std::pair<typename std::vector<Entry>::const_iterator,
                   typename std::vector<Entry>::const_iterator>
  KeyRange(const SpineBatch& batch, const K& key) {
    const std::vector<Entry>& rows = batch.rows();
    // Sorted batch: front/back bound the key space, cutting most probes
    // before the binary search.
    if (rows.empty() || key < rows.front().key || rows.back().key < key) {
      return {rows.end(), rows.end()};
    }
    auto lo = std::lower_bound(
        rows.begin(), rows.end(), key,
        [](const Entry& e, const K& k) { return e.key < k; });
    // Seek the end of the key's run: a few linear steps cover the common
    // short history; long (skewed) runs switch to exponential + binary
    // search so the seek is O(log run) instead of O(run).
    auto hi = lo;
    auto end = rows.end();
    for (int i = 0; i < 8; ++i) {
      if (hi == end || !(hi->key == key)) return {lo, hi};
      ++hi;
    }
    ptrdiff_t step = 1;
    while (end - hi > step && (hi + step)->key == key) {
      hi += step;
      step *= 2;
    }
    auto search_end = end - hi > step ? hi + step : end;
    hi = std::upper_bound(hi, search_end, key,
                          [](const K& k, const Entry& e) { return k < e.key; });
    return {lo, hi};
  }

  // Sorts and consolidates a batch's entries: equal (key, value, time)
  // triples merge, zero-diff results drop. Recomputes the version range.
  void SortAndConsolidate(SpineBatch* batch) {
    std::vector<Entry>* entries = &batch->entries;
    std::sort(entries->begin(), entries->end(), EntryLess);
    size_t out = 0;
    uint32_t min_version = UINT32_MAX;
    uint32_t max_version = 0;
    bool uniform = true;
    for (size_t i = 0; i < entries->size();) {
      size_t j = i;
      Diff total = 0;
      while (j < entries->size() && (*entries)[j].key == (*entries)[i].key &&
             (*entries)[j].value == (*entries)[i].value &&
             (*entries)[j].time == (*entries)[i].time) {
        total += (*entries)[j].diff;
        ++j;
      }
      if (total != 0) {
        (*entries)[out] = std::move((*entries)[i]);
        (*entries)[out].diff = total;
        min_version = std::min(min_version, (*entries)[out].time.version);
        max_version = std::max(max_version, (*entries)[out].time.version);
        uniform = uniform &&
                  (*entries)[out].time == (*entries)[0].time;
        ++out;
      }
      i = j;
    }
    total_entries_ -= entries->size() - out;
    entries_reclaimed_ += entries->size() - out;
    entries->resize(out);
    batch->min_version =
        min_version == UINT32_MAX ? sealed_version_ : min_version;
    batch->max_version = out == 0 ? sealed_version_ : max_version;
    batch->uniform_time = out > 0 && uniform;
  }

  void SealTail() {
    if (tail_.empty()) return;
    Timer seal_timer;
    SpineBatch batch;
    batch.entries = std::move(tail_);
    tail_.clear();
    SortAndConsolidate(&batch);
    if (batch.entries.empty()) return;
    spine_.push_back(std::move(batch));
    // Geometric invariant: each batch at least twice the size of the next
    // younger one, restored by merging from the young end.
    while (spine_.size() >= 2 &&
           spine_[spine_.size() - 2].rows().size() <
               2 * spine_.back().rows().size()) {
      SpineBatch b = std::move(spine_.back());
      spine_.pop_back();
      SpineBatch a = std::move(spine_.back());
      spine_.pop_back();
      SpineBatch merged = MergeBatches(std::move(a), std::move(b));
      if (!merged.entries.empty()) spine_.push_back(std::move(merged));
    }
    SpineMergeNanos()->Observe(static_cast<uint64_t>(seal_timer.Nanos()));
    CheckSpineInvariants();
  }

  // Rewrites versions below the sealed frontier up to it. The rewrite can
  // reorder and equate entries of the same (key, value) — different
  // iteration vectors at different old versions land on the same sealed
  // version — so in general the batch is re-sorted and re-consolidated.
  // A batch whose entries all sit at one version (the usual shape after a
  // previous full compaction brought it to the then-frontier) is exempt:
  // clamping a uniform version preserves the (key, value, lex time) order
  // (ties already broke on iterations) and can equate no two entries, so
  // resealing a quiescent spine is O(n) instead of O(n log n).
  void Rewrite(SpineBatch* batch) {
    if (batch->min_version >= sealed_version_) return;
    batch->Materialize();
    if (batch->min_version == batch->max_version) {
      for (Entry& e : batch->entries) e.time.version = sealed_version_;
      batch->min_version = batch->max_version = sealed_version_;
      return;
    }
    for (Entry& e : batch->entries) {
      if (e.time.version < sealed_version_) e.time.version = sealed_version_;
    }
    SortAndConsolidate(batch);
  }

  // First index at or after `begin` whose entry is not EntryLess than
  // `pivot`, found by exponential (galloping) then binary search. The
  // caller has just consumed a win at begin-1, so runs are probed from 1.
  static size_t GallopUpper(const std::vector<Entry>& v, size_t begin,
                            const Entry& pivot) {
    size_t step = 1;
    size_t lo = begin;
    while (lo + step < v.size() && EntryLess(v[lo + step], pivot)) {
      lo += step;
      step *= 2;
    }
    size_t hi = std::min(v.size(), lo + step);
    return static_cast<size_t>(
        std::lower_bound(v.begin() + lo, v.begin() + hi, pivot, EntryLess) -
        v.begin());
  }

  // Merge-time compaction: both inputs are brought to the sealed frontier
  // first, then merged with cancellation of equal (key, value, time)
  // entries. Skewed inputs gallop: after one side wins kGallopTrigger
  // comparisons in a row, its whole remaining run below the other side's
  // head is located by exponential search and moved in bulk (timsort's
  // trick), so merging a tiny batch into a huge one costs O(tiny × log
  // huge) comparisons instead of O(huge).
  static constexpr size_t kGallopTrigger = 16;

  SpineBatch MergeBatches(SpineBatch&& a, SpineBatch&& b) {
    ++num_merges_;
    a.Materialize();
    b.Materialize();
    Rewrite(&a);
    Rewrite(&b);
    SpineBatch merged;
    merged.entries.reserve(a.entries.size() + b.entries.size());
    size_t i = 0, j = 0, dropped = 0;
    size_t a_wins = 0, b_wins = 0;
    auto bulk_move = [&merged](std::vector<Entry>& src, size_t from,
                               size_t to) {
      merged.entries.insert(merged.entries.end(),
                            std::make_move_iterator(src.begin() + from),
                            std::make_move_iterator(src.begin() + to));
    };
    while (i < a.entries.size() && j < b.entries.size()) {
      if (EntryLess(a.entries[i], b.entries[j])) {
        merged.entries.push_back(std::move(a.entries[i++]));
        b_wins = 0;
        if (++a_wins >= kGallopTrigger && i < a.entries.size()) {
          size_t run_end = GallopUpper(a.entries, i, b.entries[j]);
          if (run_end > i) {
            bulk_move(a.entries, i, run_end);
            i = run_end;
            SpineMergeGallops()->Increment();
          }
          a_wins = 0;
        }
      } else if (EntryLess(b.entries[j], a.entries[i])) {
        merged.entries.push_back(std::move(b.entries[j++]));
        a_wins = 0;
        if (++b_wins >= kGallopTrigger && j < b.entries.size()) {
          size_t run_end = GallopUpper(b.entries, j, a.entries[i]);
          if (run_end > j) {
            bulk_move(b.entries, j, run_end);
            j = run_end;
            SpineMergeGallops()->Increment();
          }
          b_wins = 0;
        }
      } else {
        // Equal (key, value, time): consolidate across the batch boundary.
        Entry e = std::move(a.entries[i++]);
        e.diff += b.entries[j++].diff;
        dropped += 1 + (e.diff == 0);
        if (e.diff != 0) merged.entries.push_back(std::move(e));
        a_wins = b_wins = 0;
      }
    }
    bulk_move(a.entries, i, a.entries.size());
    bulk_move(b.entries, j, b.entries.size());
    // min(a.min, b.min) is only a lower bound — cancellation may have
    // removed the very entries that carried it; recompute exactly so the
    // metadata stays tight (and the paranoid invariant can be strict).
    merged.min_version = UINT32_MAX;
    merged.max_version = 0;
    merged.uniform_time = true;
    for (const Entry& e : merged.entries) {
      merged.min_version = std::min(merged.min_version, e.time.version);
      merged.max_version = std::max(merged.max_version, e.time.version);
      if (!(e.time == merged.entries.front().time)) merged.uniform_time = false;
    }
    if (merged.entries.empty()) {
      merged.min_version = merged.max_version = sealed_version_;
      merged.uniform_time = false;
    }
    total_entries_ -= dropped;
    entries_reclaimed_ += dropped;
    return merged;
  }

  std::vector<SpineBatch> spine_;
  std::vector<Entry> tail_;
  mutable Batch<V> accumulate_scratch_;
  // (pos, end) cursors of the value-sorted runs Accumulate merges.
  mutable std::vector<std::pair<size_t, size_t>> accumulate_runs_;
  size_t total_entries_ = 0;
  size_t peak_entries_ = 0;
  uint64_t entries_reclaimed_ = 0;
  size_t inserts_since_compaction_ = 0;
  uint64_t insert_seq_ = 0;  // cumulative inserts; drives the fuzz hooks
  uint64_t num_merges_ = 0;
  uint64_t num_compactions_ = 0;
  uint32_t sealed_version_ = 0;
};

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_TRACE_H_
