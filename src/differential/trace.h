// Keyed traces (DD "arrangements"): per-key histories of timestamped value
// updates. Join and Reduce are built on traces; traces compact once a
// version is sealed (no future batch can carry an earlier version).
#ifndef GRAPHSURGE_DIFFERENTIAL_TRACE_H_
#define GRAPHSURGE_DIFFERENTIAL_TRACE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "differential/time.h"
#include "differential/update.h"

namespace gs::differential {

/// Per-key history of (value, time, diff) entries.
template <typename K, typename V>
class Trace {
 public:
  struct Entry {
    V value;
    Time time;
    Diff diff;
  };
  using History = std::vector<Entry>;

  void Insert(const K& key, const V& value, const Time& time, Diff diff) {
    if (diff == 0) return;
    History& h = map_[key];
    h.push_back(Entry{value, time, diff});
    total_entries_++;
    dirty_.push_back(key);
    // Lazy per-key compaction keeps hot keys bounded between seals.
    if (h.size() >= 64 && h.size() % 64 == 0) {
      size_t before = h.size();
      CompactHistory(&h, sealed_version_);
      total_entries_ -= before - h.size();
    }
  }

  /// Returns the key's history, or nullptr.
  const History* Get(const K& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Accumulates the key's value multiset at `time` (sum of diffs over all
  /// entries with entry.time ≤ time in the product order). Appends net
  /// non-zero (value, count) pairs to `out` (consolidated).
  void Accumulate(const K& key, const Time& time, Batch<V>* out) const {
    const History* h = Get(key);
    if (h == nullptr) return;
    size_t base = out->size();
    for (const Entry& e : *h) {
      if (e.time.LessEq(time)) out->push_back(Update<V>{e.value, e.diff});
    }
    if (base == 0) {
      Consolidate(out);
    } else if (out->size() - base > 1) {
      // Consolidate just the appended region.
      Batch<V> region(out->begin() + base, out->end());
      Consolidate(&region);
      out->resize(base);
      out->insert(out->end(), region.begin(), region.end());
    } else if (out->size() - base == 1 && out->back().diff == 0) {
      out->pop_back();
    }
  }

  /// Compacts the histories of keys touched since the last compaction:
  /// entries with version < `sealed_version` are rewritten to
  /// `sealed_version` (legal because all future query and lub times have
  /// version ≥ sealed_version and the product-order relation to any such
  /// time is unchanged), then merged. Converged iterative computations
  /// collapse to near-minimal size. Restricting the sweep to dirty keys
  /// keeps per-version maintenance proportional to the update volume —
  /// untouched keys' histories cannot have changed.
  void CompactTo(uint32_t sealed_version) {
    sealed_version_ = sealed_version;
    std::sort(dirty_.begin(), dirty_.end());
    dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
    for (const K& key : dirty_) {
      auto it = map_.find(key);
      if (it == map_.end()) continue;
      size_t before = it->second.size();
      CompactHistory(&it->second, sealed_version);
      total_entries_ -= before - it->second.size();
      if (it->second.empty()) map_.erase(it);
    }
    dirty_.clear();
  }

  size_t num_keys() const { return map_.size(); }
  size_t total_entries() const { return total_entries_; }

  /// Iteration support (tests, capture).
  auto begin() const { return map_.begin(); }
  auto end() const { return map_.end(); }

 private:
  // Rewrites entries older than the sealed frontier to it, then sorts by
  // (value, lex time) and merges equal (value, time) entries.
  static void CompactHistory(History* h, uint32_t sealed_version) {
    for (Entry& e : *h) {
      if (e.time.version < sealed_version) e.time.version = sealed_version;
    }
    std::sort(h->begin(), h->end(), [](const Entry& a, const Entry& b) {
      if (a.value != b.value) return a.value < b.value;
      return a.time.LexLess(b.time);
    });
    size_t out = 0;
    for (size_t i = 0; i < h->size();) {
      size_t j = i;
      Diff total = 0;
      while (j < h->size() && (*h)[j].value == (*h)[i].value &&
             (*h)[j].time == (*h)[i].time) {
        total += (*h)[j].diff;
        ++j;
      }
      if (total != 0) {
        (*h)[out] = (*h)[i];
        (*h)[out].diff = total;
        ++out;
      }
      i = j;
    }
    h->resize(out);
  }

  std::unordered_map<K, History, Hasher> map_;
  std::vector<K> dirty_;  // keys inserted since the last CompactTo
  size_t total_entries_ = 0;
  uint32_t sealed_version_ = 0;
};

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_TRACE_H_
