// Differential binary join on keyed streams.
//
// δ(A ⋈ B) = Σ over pairs (δA at ta, δB at tb) of matched records, emitted
// at lub(ta, tb). Each pair is counted exactly once: when a batch is
// processed on one input it joins against the other input's trace, which
// contains exactly the batches processed earlier; the batch is then added
// to its own trace. This bilinear form is correct under any processing
// order (DESIGN.md §3.1).
#ifndef GRAPHSURGE_DIFFERENTIAL_JOIN_H_
#define GRAPHSURGE_DIFFERENTIAL_JOIN_H_

#include <map>
#include <utility>

#include "differential/dataflow.h"
#include "differential/exchange.h"
#include "differential/trace.h"

namespace gs::differential {

template <typename K, typename V1, typename V2, typename Out, typename Fn>
class JoinOp : public OperatorBase {
 public:
  JoinOp(Dataflow* dataflow, Stream<std::pair<K, V1>> left,
         Stream<std::pair<K, V2>> right, Fn fn)
      : OperatorBase(dataflow, "join"), fn_(std::move(fn)) {
    RegisterOutput(&output_);
    left.publisher()->Subscribe(
        dataflow, order(),
        [this](const Time& t, const Batch<std::pair<K, V1>>& b) {
          left_port_.Append(t, b);
          RequestRun(t);
        });
    right.publisher()->Subscribe(
        dataflow, order(),
        [this](const Time& t, const Batch<std::pair<K, V2>>& b) {
          right_port_.Append(t, b);
          RequestRun(t);
        });
  }

  Stream<Out> stream() { return Stream<Out>(dataflow_, &output_); }

  void OnVersionSealed(uint32_t version) override {
    left_.CompactTo(version);
    right_.CompactTo(version);
  }

  void OnEpochSealed(uint32_t last_version) override {
    left_.CompactEpoch(last_version);
    right_.CompactEpoch(last_version);
  }

  void CollectMemory(OperatorMemory* out) const override {
    out->AddTrace(left_);
    out->AddTrace(right_);
    out->queued_bytes +=
        left_port_.buffered_bytes() + right_port_.buffered_bytes();
  }

 private:
  using OutBuckets = std::map<Time, Batch<Out>, TimeLexLess>;

  void RunAt(const Time& time) override {
    Batch<std::pair<K, V1>> left_batch = left_port_.Take(time);
    Batch<std::pair<K, V2>> right_batch = right_port_.Take(time);
    OutBuckets out;
    // Process left against the right trace *before* the concurrent right
    // batch is added, then right against the left trace *including* the
    // concurrent left batch — each (δl, δr) pair contributes exactly once.
    for (const auto& u : left_batch) {
      const K& key = u.data.first;
      const uint64_t key_hash = HashValue(key);
      right_.ForEach(key, [&](const V2& value, const Time& entry_time,
                              Diff entry_diff) {
        dataflow_->stats().join_matches++;
        dataflow_->stats().AddShardWork(key_hash, 1);
        out[time.Lub(entry_time)].push_back(Update<Out>{
            fn_(key, u.data.second, value), u.diff * entry_diff});
      });
      left_.Insert(key, u.data.second, time, u.diff);
    }
    for (const auto& u : right_batch) {
      const K& key = u.data.first;
      const uint64_t key_hash = HashValue(key);
      left_.ForEach(key, [&](const V1& value, const Time& entry_time,
                             Diff entry_diff) {
        dataflow_->stats().join_matches++;
        dataflow_->stats().AddShardWork(key_hash, 1);
        out[time.Lub(entry_time)].push_back(Update<Out>{
            fn_(key, value, u.data.second), entry_diff * u.diff});
      });
      right_.Insert(key, u.data.second, time, u.diff);
    }
    for (auto& [t, batch] : out) {
      output_.Publish(dataflow_, t, std::move(batch));
    }
  }

  Fn fn_;
  InputPort<std::pair<K, V1>> left_port_;
  InputPort<std::pair<K, V2>> right_port_;
  Trace<K, V1> left_;
  Trace<K, V2> right_;
  Publisher<Out> output_;
};

/// Joins two keyed streams; fn(key, v1, v2) produces the output record.
/// Join is a key-repartitioning boundary: in sharded execution both inputs
/// are exchanged by key hash first, so each shard's traces hold exactly the
/// keys it owns and matching is shard-local.
template <typename K, typename V1, typename V2, typename Fn>
auto Join(Stream<std::pair<K, V1>> left, Stream<std::pair<K, V2>> right,
          Fn fn) {
  using Out = std::decay_t<decltype(fn(std::declval<const K&>(),
                                       std::declval<const V1&>(),
                                       std::declval<const V2&>()))>;
  left = ExchangeByKey(left);
  right = ExchangeByKey(right);
  auto* op =
      left.dataflow()->template AddOperator<JoinOp<K, V1, V2, Out, Fn>>(
          left, right, std::move(fn));
  return op->stream();
}

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_JOIN_H_
