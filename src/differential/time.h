// Differential timestamps: (version, iteration-vector) with the product
// partial order, as in differential computation (Abadi, McSherry, Plotkin).
//
// A view collection is a *totally ordered* sequence of versions; loop
// iterations (one coordinate per nested `Iterate` scope) are partially
// ordered against the version dimension. The engine processes versions in
// order and, within a version, schedules work in lexicographic time order —
// a linear extension of the product order (see scheduler.h).
#ifndef GRAPHSURGE_DIFFERENTIAL_TIME_H_
#define GRAPHSURGE_DIFFERENTIAL_TIME_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"

namespace gs::differential {

/// Maximum supported nesting depth of Iterate scopes. The doubly-iterative
/// SCC coloring algorithm needs 2; 4 leaves headroom.
inline constexpr int kMaxNesting = 4;

/// Sentinel iteration coordinate used only in scheduler keys to order a
/// scope-egress flush after all events inside the scope.
inline constexpr uint32_t kIterInfinity = 0xFFFFFFFFu;

/// A partially ordered timestamp.
struct Time {
  uint32_t version = 0;
  uint8_t depth = 0;  // number of active iteration coordinates
  std::array<uint32_t, kMaxNesting> iters = {0, 0, 0, 0};

  Time() = default;
  explicit Time(uint32_t v) : version(v) {}

  /// Timestamp with one more (innermost) iteration coordinate, set to 0.
  /// Used by scope ingress.
  Time Entered() const {
    GS_CHECK(depth < kMaxNesting) << "Iterate nesting deeper than supported";
    Time t = *this;
    t.iters[t.depth++] = 0;
    return t;
  }

  /// Timestamp with the innermost coordinate dropped. Used by scope egress.
  Time Left() const {
    GS_CHECK(depth > 0);
    Time t = *this;
    t.iters[--t.depth] = 0;
    return t;
  }

  /// Timestamp with the innermost coordinate advanced by `steps`. Used by
  /// the loop feedback edge.
  Time Delayed(uint32_t steps = 1) const {
    GS_CHECK(depth > 0);
    Time t = *this;
    t.iters[depth - 1] += steps;
    return t;
  }

  uint32_t inner_iteration() const {
    GS_CHECK(depth > 0);
    return iters[depth - 1];
  }

  /// Product partial order: this ≤ other iff every coordinate is ≤.
  /// Only meaningful for equal-depth times (same scope).
  bool LessEq(const Time& other) const {
    if (version > other.version) return false;
    for (int i = 0; i < depth; ++i) {
      if (iters[i] > other.iters[i]) return false;
    }
    return true;
  }

  /// Least upper bound under the product order (equal depth required).
  Time Lub(const Time& other) const {
    Time t;
    t.version = std::max(version, other.version);
    t.depth = depth;
    for (int i = 0; i < depth; ++i) {
      t.iters[i] = std::max(iters[i], other.iters[i]);
    }
    return t;
  }

  bool operator==(const Time& other) const {
    if (version != other.version || depth != other.depth) return false;
    for (int i = 0; i < depth; ++i) {
      if (iters[i] != other.iters[i]) return false;
    }
    return true;
  }

  /// Lexicographic total order (version, iters...) — a linear extension of
  /// the product order used for canonical history ordering and scheduling.
  bool LexLess(const Time& other) const {
    if (version != other.version) return version < other.version;
    int d = std::max(depth, other.depth);
    for (int i = 0; i < d; ++i) {
      uint32_t a = i < depth ? iters[i] : 0;
      uint32_t b = i < other.depth ? other.iters[i] : 0;
      if (a != b) return a < b;
    }
    return false;
  }

  std::string ToString() const {
    std::string s = "<" + std::to_string(version);
    for (int i = 0; i < depth; ++i) {
      s += ", ";
      s += iters[i] == kIterInfinity ? "inf" : std::to_string(iters[i]);
    }
    s += ">";
    return s;
  }
};

/// Mapping between the engine's flat version axis and the two logical
/// dimensions of a *live* view collection: graph-update epoch (outer) and
/// view position within the collection (inner).
///
/// The engine's versions are totally ordered; a live collection's logical
/// time is the product (epoch, view) where both components are themselves
/// totally ordered and epochs dominate. Epoch-major flattening
///   version = epoch * num_views + view
/// is exactly the lexicographic order on (epoch, view), i.e. a linear
/// extension of that product order — so feeding flattened versions through
/// the existing differential machinery computes the right accumulations at
/// every (epoch, view) pair without widening Time itself.
struct EpochVersion {
  static uint32_t Flatten(uint32_t epoch, uint32_t view, uint32_t num_views) {
    GS_CHECK(view < num_views);
    return epoch * num_views + view;
  }
  /// Inverse of Flatten: (epoch, view).
  static std::pair<uint32_t, uint32_t> Unflatten(uint32_t version,
                                                 uint32_t num_views) {
    return {version / num_views, version % num_views};
  }
};

/// Comparator for ordered containers keyed by Time (lexicographic order).
struct TimeLexLess {
  bool operator()(const Time& a, const Time& b) const { return a.LexLess(b); }
};

struct TimeHasher {
  size_t operator()(const Time& t) const {
    uint64_t seed = Mix64(t.version);
    HashCombine(&seed, t.depth);
    for (int i = 0; i < t.depth; ++i) HashCombine(&seed, t.iters[i]);
    return static_cast<size_t>(seed);
  }
};

}  // namespace gs::differential

#endif  // GRAPHSURGE_DIFFERENTIAL_TIME_H_
