// Deterministic fuzzing hook points for the differential engine.
//
// The property-based fuzzer (src/testing/) explores rare interleavings by
// perturbing the three degrees of freedom the engine's correctness argument
// says are free — and only those:
//
//   * scheduler tie-breaking: the (op_order, seq) components of EventKey are
//     an efficiency heuristic below the lexicographic time order
//     (scheduler.h). Scrambling `seq` is always safe. Scrambling `op_order`
//     is safe for *unarranged* plans only: shared arrangements rely on the
//     ArrangeOp running before its consumers at tied times (arrange.h), so
//     arranged runs must keep operator-creation-order ties intact.
//   * exchange delivery order: ExchangeInbox::Drain returns batches in push
//     order, but downstream operators bucket per timestamp and the
//     scheduler orders timestamps, so any permutation of one drain is
//     legal.
//   * trace maintenance points: CompactTo(sealed_version) is legal at any
//     moment no trace iteration is in flight (Insert call sites), and the
//     tail-seal threshold is a pure performance knob — forcing it to 1
//     simulates allocation pressure (maximum spine churn).
//
// Two fault hooks do change behavior on purpose:
//   * fail_after_events simulates a mid-run resource failure: the event-cap
//     check returns Status::Internal once the budget is hit. The fuzzer
//     verifies the engine tears down cleanly (memory gauges return to zero)
//     and that a fresh engine re-run succeeds.
//   * drop_insert_at is the hidden `--inject-bug` hook: a trace silently
//     swallows its Nth insert (a simulated lost-update/compaction-race
//     bug). It exists so the fuzzer's oracle, minimizer, and repro writer
//     can be demonstrated end to end against a real defect.
//
// Threading/determinism contract: hooks are plain globals written only
// while no engine threads are running (before a Dataflow/ShardedDataflow is
// constructed, cleared after it is destroyed — thread creation/join gives
// the needed happens-before). Every hook decision is a pure function of the
// installed seed and per-call-site counters, so a given (case, hook) pair
// replays identically.
#ifndef GRAPHSURGE_DIFFERENTIAL_FUZZ_HOOKS_H_
#define GRAPHSURGE_DIFFERENTIAL_FUZZ_HOOKS_H_

#include <cstddef>
#include <cstdint>

namespace gs::differential::fuzz {

/// splitmix64 finalizer: a cheap, stateless, high-quality mixing function.
/// All hook decisions derive from Mix(seed ^ counter) so they are pure and
/// replayable.
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct Hooks {
  /// Seed mixed into every hook decision.
  uint64_t seed = 0;

  /// Scheduler: replace the FIFO `seq` tie-breaker with Mix(seed ^ seq).
  /// Safe for every plan (ties at equal (time, op_order) are between
  /// re-requests that never coexist in the heap).
  bool scramble_seq = false;
  /// Scheduler: additionally scramble the `op_order` tie-breaker, fuzzing
  /// operator activation order among same-time events. Only safe for plans
  /// without shared arrangements (see header comment).
  bool scramble_op_order = false;

  /// Exchange: apply a deterministic permutation to each inbox drain.
  bool shuffle_exchange = false;

  /// Trace: run an extra CompactTo(sealed frontier) after every Nth insert
  /// (0 = off). Exercises mid-run compaction at points the normal engine
  /// never compacts.
  uint64_t compaction_period = 0;

  /// Trace: tail-seal threshold override (0 = kTailSealThreshold). 1 forces
  /// a sort/merge on every insert — the allocation-pressure fault.
  size_t tail_seal_threshold = 0;

  /// Hidden --inject-bug hook: each trace silently drops its Nth insert
  /// (0 = off). This IS a bug; the fuzzer must catch it.
  uint64_t drop_insert_at = 0;

  /// Injected allocation failure: Dataflow's event-cap check returns
  /// Status::Internal once this many events ran in one step (0 = off).
  uint64_t fail_after_events = 0;

  /// Watchdog testing: one injected frontier stall per ShardedDataflow
  /// Step() — after a round's status is published (records outstanding
  /// non-zero, round counter static), the step thread sleeps this long
  /// before running the phase (0 = off). Not a correctness perturbation;
  /// exists so the watchdog's frontier_stall rule is deterministically
  /// testable.
  uint64_t stall_frontier_ms = 0;

  /// Watchdog testing: every ShardedDataflow::SealEpoch sleeps this long
  /// before compacting (0 = off), pushing LiveRun::AdvanceEpoch past the
  /// watchdog's epoch_advance_deadline.
  uint64_t delay_epoch_seal_ms = 0;

  bool any() const {
    return scramble_seq || scramble_op_order || shuffle_exchange ||
           compaction_period != 0 || tail_seal_threshold != 0 ||
           drop_insert_at != 0 || fail_after_events != 0 ||
           stall_frontier_ms != 0 || delay_epoch_seal_ms != 0;
  }
};

/// The process-wide hook set. Zero-initialized (all hooks off) in normal
/// operation; the hot-path cost of consulting it is a few scalar loads.
inline Hooks& GlobalHooks() {
  static Hooks hooks;
  return hooks;
}

/// RAII installer: swaps the given hooks in, restores the previous set on
/// destruction. Must only be constructed/destructed while no engine threads
/// are running.
class ScopedHooks {
 public:
  explicit ScopedHooks(const Hooks& hooks) : previous_(GlobalHooks()) {
    GlobalHooks() = hooks;
  }
  ~ScopedHooks() { GlobalHooks() = previous_; }

  ScopedHooks(const ScopedHooks&) = delete;
  ScopedHooks& operator=(const ScopedHooks&) = delete;

 private:
  Hooks previous_;
};

}  // namespace gs::differential::fuzz

#endif  // GRAPHSURGE_DIFFERENTIAL_FUZZ_HOOKS_H_
