// Aggregate (Graph OLAP) views — the paper's Listing 4: summarize the call
// graph into a city-level super-graph and a profession-triangle view.
//
// Build & run:  ./build/examples/aggregate_views
#include <cstdio>

#include "api/graphsurge.h"
#include "graph/generators.h"

int main() {
  gs::Graphsurge system;
  GS_CHECK(system.AddGraph("Calls", gs::MakeCallGraphExample()).ok());

  // City-Calls-City (Listing 4, second view).
  GS_CHECK(system
               .Execute("create view City-Calls-City on Calls\n"
                        "nodes group by city aggregate num-phones: count(*)\n"
                        "edges aggregate total-duration: sum(duration), "
                        "calls: count(*)")
               .ok());
  const auto* city = *system.GetAggregateView("City-Calls-City");
  std::printf("City-Calls-City: %zu super-nodes, %zu super-edges\n",
              city->graph.num_nodes(), city->graph.num_edges());
  for (size_t v = 0; v < city->graph.num_nodes(); ++v) {
    std::printf("  super-node [%s]: %lld phones\n",
                city->group_labels[v].c_str(),
                static_cast<long long>(
                    city->graph.node_properties()
                        .GetByName(v, "num-phones")->AsInt()));
  }
  for (gs::EdgeId e = 0; e < city->graph.num_edges(); ++e) {
    const auto& edge = city->graph.edge(e);
    std::printf("  [%s] -> [%s]: %lld calls, %lld total minutes\n",
                city->group_labels[edge.src].c_str(),
                city->group_labels[edge.dst].c_str(),
                static_cast<long long>(city->graph.edge_properties()
                                           .GetByName(e, "calls")->AsInt()),
                static_cast<long long>(
                    city->graph.edge_properties()
                        .GetByName(e, "total-duration")->AsInt()));
  }

  // The predicate-grouped triangle view (Listing 4, first view).
  GS_CHECK(system
               .Execute("create view NY-Dr-LA-Lawyer on Calls\n"
                        "nodes group by [\n"
                        "(profession='Doctor' and city='NY'),\n"
                        "(profession='Lawyer' and city='LA'),\n"
                        "(profession='Engineer' and city='LA')]\n"
                        "aggregate count(*)")
               .ok());
  const auto* tri = *system.GetAggregateView("NY-Dr-LA-Lawyer");
  std::printf("\nNY-Dr-LA-Lawyer: %zu groups (%zu customers ungrouped)\n",
              tri->graph.num_nodes(), tri->ungrouped_nodes);
  for (size_t v = 0; v < tri->graph.num_nodes(); ++v) {
    std::printf("  group %s: %lld members\n", tri->group_labels[v].c_str(),
                static_cast<long long>(
                    tri->graph.node_properties()
                        .GetByName(v, "count")->AsInt()));
  }
  return 0;
}
