// Contingency / perturbation analysis (paper Example 2): build one view
// per failure scenario — here, every 3-combination of the 5 largest
// communities removed from a social graph — and measure connectivity under
// each scenario. Because no natural view order exists, the collection
// ordering optimizer (paper §4) is the difference between a fast and a
// slow analysis; this example shows the diff counts with and without it.
//
// Build & run:  ./build/examples/contingency_analysis
#include <cstdio>
#include <set>

#include "api/graphsurge.h"
#include "algorithms/algorithms.h"
#include "common/timer.h"
#include "graph/generators.h"

int main() {
  gs::CommunityGraphOptions gen;
  gen.num_nodes = 4000;
  gen.num_communities = 12;
  gen.seed = 3;
  gs::CommunityGraph cg = gs::GenerateCommunityGraph(gen);
  const gs::PropertyGraph& graph = cg.graph;

  gs::Graphsurge system;
  {
    gs::PropertyGraph copy = cg.graph;
    GS_CHECK(system.AddGraph("grid", std::move(copy)).ok());
  }

  // One view per removal scenario: drop every edge touching any of the
  // chosen communities (membership is a bitmask node property).
  auto mask_col = *graph.node_properties().ColumnIndex("communities");
  const gs::Column* masks = &graph.node_properties().column(mask_col);
  std::vector<std::function<bool(gs::EdgeId)>> scenarios;
  std::vector<std::string> names;
  const size_t kTop = 5;  // three nested loops below = C(kTop, 3) scenarios
  for (size_t a = 0; a < kTop; ++a) {
    for (size_t b = a + 1; b < kTop; ++b) {
      for (size_t c = b + 1; c < kTop; ++c) {
        uint64_t removed = (1ULL << a) | (1ULL << b) | (1ULL << c);
        names.push_back("rm_" + std::to_string(a) + std::to_string(b) +
                        std::to_string(c));
        scenarios.push_back([&graph, masks, removed](gs::EdgeId e) {
          uint64_t m =
              static_cast<uint64_t>(masks->GetInt(graph.edge(e).src)) |
              static_cast<uint64_t>(masks->GetInt(graph.edge(e).dst));
          return (m & removed) == 0;
        });
      }
    }
  }

  // Materialize twice: definition order vs optimizer order.
  gs::views::MaterializeOptions keep_order;
  GS_CHECK(system.CreateCollection("scenarios_unordered", "grid", names,
                                   scenarios, &keep_order)
               .ok());
  gs::views::MaterializeOptions optimize;
  optimize.use_ordering = true;
  GS_CHECK(system.CreateCollection("scenarios_ordered", "grid", names,
                                   scenarios, &optimize)
               .ok());

  const auto* unordered = *system.GetCollection("scenarios_unordered");
  const auto* ordered = *system.GetCollection("scenarios_ordered");
  std::printf("%zu failure scenarios over %zu edges\n", names.size(),
              graph.num_edges());
  std::printf("definition order: %llu edge diffs\n",
              static_cast<unsigned long long>(unordered->total_diffs));
  std::printf("optimized order:  %llu edge diffs (%.1fx fewer, ordering "
              "took %.3fs)\n",
              static_cast<unsigned long long>(ordered->total_diffs),
              static_cast<double>(unordered->total_diffs) /
                  static_cast<double>(ordered->total_diffs),
              ordered->ordering_seconds);

  // Connectivity per scenario, computed differentially on the good order.
  gs::analytics::Wcc wcc;
  gs::views::ExecutionOptions options;
  options.capture_results = true;
  gs::Timer timer;
  auto run = system.RunComputation(wcc, "scenarios_ordered", options);
  GS_CHECK(run.ok()) << run.status().ToString();
  std::printf("\nWCC across all scenarios in %.3fs:\n", timer.Seconds());
  for (size_t t = 0; t < run->results.size(); ++t) {
    std::set<int64_t> components;
    for (const auto& [v, label] : run->results[t]) components.insert(label);
    std::printf("  %-10s %6zu surviving edges, %5zu reachable vertices, "
                "%4zu components\n",
                ordered->view_names[t].c_str(),
                static_cast<size_t>(ordered->view_sizes[t]),
                run->results[t].size(), components.size());
  }
  return 0;
}
