// Quickstart: load the paper's running-example phone call graph, define a
// filtered view and a view collection in GVDL, and run connected
// components across all views with differential sharing.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "api/graphsurge.h"
#include "algorithms/algorithms.h"
#include "graph/generators.h"

int main() {
  gs::Graphsurge system;

  // The Figure 1 call graph: customers with city/profession, calls with
  // duration/year. (Normally you would LoadGraphCsv.)
  gs::Status status = system.AddGraph("Calls", gs::MakeCallGraphExample());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // Listing 1 (adapted): a single filtered view, materialized as a graph.
  status = system.Execute(
      "create view LA-Long-Calls on Calls\n"
      "edges where src.city = 'LA' and dst.city = 'LA' and duration > 10");
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  auto view = system.GetGraph("LA-Long-Calls");
  std::printf("LA-Long-Calls has %zu of %zu calls\n",
              (*view)->num_edges(), (**system.GetGraph("Calls")).num_edges());

  // Listing 3 (adapted): a view collection of duration thresholds.
  status = system.Execute(
      "create view collection call-analysis on Calls\n"
      "[D5: duration <= 5], [D10: duration <= 10], [D20: duration <= 20],\n"
      "[D34: duration <= 34]");
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // Run WCC differentially across all four views.
  gs::analytics::Wcc wcc;
  gs::views::ExecutionOptions options;
  options.capture_results = true;
  auto result = system.RunComputation(wcc, "call-analysis", options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const auto* collection = *system.GetCollection("call-analysis");
  for (size_t t = 0; t < result->results.size(); ++t) {
    // Count distinct components.
    std::set<int64_t> components;
    for (const auto& [v, label] : result->results[t]) {
      components.insert(label);
    }
    std::printf("view %-4s: %2zu edges, %zu vertices in %zu components "
                "(%s, %llu output diffs)\n",
                collection->view_names[t].c_str(),
                static_cast<size_t>(collection->view_sizes[t]),
                result->results[t].size(), components.size(),
                result->per_view[t].ran_scratch ? "scratch" : "differential",
                static_cast<unsigned long long>(
                    result->per_view[t].output_diffs));
  }
  std::printf("total runtime: %.3fs\n", result->total_seconds);
  return 0;
}
