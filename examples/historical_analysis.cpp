// Historical analysis (paper Example 1): study the evolution of a temporal
// interaction network by building one view per time window and computing
// BFS and WCC across all of them, comparing the three execution
// strategies. This is the workload family of Figures 6–7.
//
// Build & run:  ./build/examples/historical_analysis
#include <cstdio>
#include <set>

#include "api/graphsurge.h"
#include "algorithms/algorithms.h"
#include "graph/generators.h"
#include "common/timer.h"

int main() {
  // A Stack-Overflow-like interaction log: edges timestamped 0..1M with
  // network growth over time.
  gs::TemporalGraphOptions gen;
  gen.num_nodes = 5000;
  gen.num_edges = 25000;
  gen.end_time = 1000000;
  gs::PropertyGraph graph = gs::GenerateTemporalGraph(gen);
  gs::VertexId source = graph.edge(0).src;

  gs::Graphsurge system;
  GS_CHECK(system.AddGraph("interactions", std::move(graph)).ok());

  // One view per year-like expanding window: everything up to t.
  std::string gvdl = "create view collection history on interactions ";
  const int kViews = 10;
  for (int i = 0; i < kViews; ++i) {
    if (i) gvdl += ", ";
    gvdl += "[upto" + std::to_string(i + 1) +
            ": timestamp <= " + std::to_string(1000000 * (i + 1) / kViews) +
            "]";
  }
  GS_CHECK(system.Execute(gvdl).ok());
  const auto* collection = *system.GetCollection("history");
  std::printf("collection 'history': %zu views, %llu total edge diffs\n",
              collection->num_views(),
              static_cast<unsigned long long>(collection->total_diffs));

  // Component count over time (the classic densification study).
  gs::analytics::Wcc wcc;
  gs::views::ExecutionOptions options;
  options.capture_results = true;
  auto run = system.RunComputation(wcc, "history", options);
  GS_CHECK(run.ok()) << run.status().ToString();
  std::printf("\n%-8s %-10s %-12s %-12s\n", "window", "edges", "vertices",
              "components");
  for (size_t t = 0; t < run->results.size(); ++t) {
    std::set<int64_t> components;
    for (const auto& [v, label] : run->results[t]) components.insert(label);
    std::printf("%-8s %-10llu %-12zu %-12zu\n",
                collection->view_names[t].c_str(),
                static_cast<unsigned long long>(collection->view_sizes[t]),
                run->results[t].size(), components.size());
  }

  // Strategy comparison for BFS levels from the first active user.
  std::printf("\nBFS-from-%llu strategy comparison:\n",
              static_cast<unsigned long long>(source));
  gs::analytics::Bfs bfs(source);
  for (auto strategy : {gs::splitting::Strategy::kDiffOnly,
                        gs::splitting::Strategy::kScratch,
                        gs::splitting::Strategy::kAdaptive}) {
    gs::views::ExecutionOptions opts;
    opts.strategy = strategy;
    gs::Timer timer;
    auto r = system.RunComputation(bfs, "history", opts);
    GS_CHECK(r.ok()) << r.status().ToString();
    std::printf("  %-10s %.3fs (%zu splits)\n",
                gs::splitting::StrategyName(strategy), timer.Seconds(),
                r->num_splits);
  }
  return 0;
}
