// The paper's running differential example (Figure 2 / Figure 3 /
// Table 1): Bellman-Ford shortest paths maintained across three versions
// of a tiny weighted graph, printing the output difference sets. Observe
// that after version G0 only O(1) differences flow, regardless of how much
// unrelated graph surrounds the changed edges.
//
// Build & run:  ./build/examples/bellman_ford_trace
#include <cstdio>

#include "algorithms/algorithms.h"
#include "differential/differential.h"
#include "graph/types.h"

namespace dd = gs::differential;

int main() {
  // Vertices: 0 = s, 1 = w1, 2 = w2, 3 = w3 — plus an unrelated component
  // (the paper's "billions of z_jk vertices", scaled down) that the updates
  // never touch.
  dd::Dataflow df;
  dd::Input<gs::WeightedEdge> edges(&df);
  gs::analytics::BellmanFord bf(/*source=*/0);
  auto result = bf.GraphAnalytics(&df, edges.stream());
  auto* capture = dd::Capture(result.InspectBatches(
      [](const dd::Time& t, const dd::Batch<gs::analytics::VertexValue>& b) {
        for (const auto& u : b) {
          std::printf("  δD %s (v%llu, dist %lld) %+lld\n",
                      t.ToString().c_str(),
                      static_cast<unsigned long long>(u.data.first),
                      static_cast<long long>(u.data.second),
                      static_cast<long long>(u.diff));
        }
      }));
  (void)capture;

  std::printf("G0: s->w1 cost 2, s->w2 cost 10, w1->w2 cost 2, w2->w3 cost "
              "2, plus an untouched 1000-vertex chain\n");
  edges.Send({0, 1, 2}, 1);
  edges.Send({0, 2, 10}, 1);
  edges.Send({1, 2, 2}, 1);
  edges.Send({2, 3, 2}, 1);
  // The unrelated z-chain, rooted at s so it has distances too.
  edges.Send({0, 100, 1}, 1);
  for (gs::VertexId z = 100; z < 1100; ++z) edges.Send({z, z + 1, 1}, 1);
  GS_CHECK(df.Step().ok());
  uint64_t updates_g0 = df.stats().updates_published;
  std::printf("(G0 published %llu update records)\n\n",
              static_cast<unsigned long long>(updates_g0));

  std::printf("G1: change (s,w1) cost 2 -> 1 (Table 1, column G1)\n");
  edges.Send({0, 1, 2}, -1);
  edges.Send({0, 1, 1}, 1);
  GS_CHECK(df.Step().ok());
  uint64_t updates_g1 = df.stats().updates_published - updates_g0;
  std::printf("(G1 published %llu update records — the z-chain was never "
              "revisited)\n\n",
              static_cast<unsigned long long>(updates_g1));

  std::printf("G2: change (s,w2) cost 10 -> 1 (Table 1, column G2)\n");
  edges.Send({0, 2, 10}, -1);
  edges.Send({0, 2, 1}, 1);
  GS_CHECK(df.Step().ok());
  uint64_t updates_g2 =
      df.stats().updates_published - updates_g0 - updates_g1;
  std::printf("(G2 published %llu update records)\n",
              static_cast<unsigned long long>(updates_g2));
  return 0;
}
